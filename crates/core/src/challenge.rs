//! Challenge construction (paper Figure 2) and solution containers.

use crate::difficulty::Difficulty;
use crate::error::IssueError;
use crate::tuple::ConnectionTuple;
use crate::verify::ServerSecret;
use puzzle_crypto::{HashBackend, MessageArena, ScalarBackend};

/// Maximum pre-image length in bits (the wire format encodes `l` in one
/// byte and the pre-image is truncated SHA-256 output, so at most 248 bits
/// = 31 whole bytes).
pub const MAX_PREIMAGE_BITS: u16 = 248;

/// The parameters of a challenge that travel in the clear (TCP option
/// fields, paper Figure 4): difficulty `(k, m)`, pre-image length `l` in
/// bits, and the issuing timestamp `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChallengeParams {
    /// Difficulty `(k, m)`.
    pub difficulty: Difficulty,
    /// Pre-image (and per-solution) length in bits; a multiple of 8.
    pub preimage_bits: u8,
    /// Server timestamp at issue time (seconds in the server's clock).
    pub timestamp: u32,
}

impl ChallengeParams {
    /// Pre-image length in whole bytes.
    pub fn preimage_len(&self) -> usize {
        self.preimage_bits as usize / 8
    }
}

/// A puzzle challenge: clear parameters plus the `l`-bit pre-image `P`
/// derived as the truncation of `y = h(secret ‖ T ‖ packet-data)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Challenge {
    params: ChallengeParams,
    preimage: Vec<u8>,
}

impl Challenge {
    /// Issues a challenge for `tuple` at time `timestamp`.
    ///
    /// Costs exactly one hash operation (g(p) = 1, paper §4) and stores no
    /// state: the server can recompute the same pre-image from the echoed
    /// fields at verification time.
    ///
    /// # Errors
    ///
    /// * [`IssueError::BadPreimageLength`] if `preimage_bits` is zero, not
    ///   a multiple of 8, or exceeds [`MAX_PREIMAGE_BITS`].
    /// * [`IssueError::DifficultyExceedsPreimage`] if `m >= preimage_bits`.
    pub fn issue(
        secret: &ServerSecret,
        tuple: &ConnectionTuple,
        timestamp: u32,
        difficulty: Difficulty,
        preimage_bits: u16,
    ) -> Result<Self, IssueError> {
        Self::issue_with(
            &ScalarBackend,
            secret,
            tuple,
            timestamp,
            difficulty,
            preimage_bits,
        )
    }

    /// [`Challenge::issue`] through an explicit [`HashBackend`].
    ///
    /// # Errors
    ///
    /// Same as [`Challenge::issue`].
    pub fn issue_with<B: HashBackend>(
        backend: &B,
        secret: &ServerSecret,
        tuple: &ConnectionTuple,
        timestamp: u32,
        difficulty: Difficulty,
        preimage_bits: u16,
    ) -> Result<Self, IssueError> {
        validate_preimage_bits(preimage_bits, difficulty)?;
        let preimage = compute_preimage(
            backend,
            secret,
            tuple,
            timestamp,
            preimage_bits as usize / 8,
        );
        Ok(Challenge {
            params: ChallengeParams {
                difficulty,
                preimage_bits: preimage_bits as u8,
                timestamp,
            },
            preimage,
        })
    }

    /// Reconstructs a challenge from fields received on the wire (client
    /// side). The client cannot check the pre-image's provenance — it just
    /// solves what it was sent.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::BadPreimageLength`] if the pre-image length is
    /// inconsistent with `params`.
    pub fn from_wire(params: ChallengeParams, preimage: Vec<u8>) -> Result<Self, IssueError> {
        validate_preimage_bits(params.preimage_bits as u16, params.difficulty)?;
        if preimage.len() != params.preimage_len() {
            // Saturate: an oversized wire pre-image (e.g. 8192 bytes)
            // must not wrap the reported bit length around to 0.
            let bits = u16::try_from(preimage.len().saturating_mul(8)).unwrap_or(u16::MAX);
            return Err(IssueError::BadPreimageLength(bits));
        }
        Ok(Challenge { params, preimage })
    }

    /// The clear parameters of this challenge.
    pub fn params(&self) -> ChallengeParams {
        self.params
    }

    /// The difficulty `(k, m)`.
    pub fn difficulty(&self) -> Difficulty {
        self.params.difficulty
    }

    /// The `l`-bit pre-image `P` as whole bytes.
    pub fn preimage(&self) -> &[u8] {
        &self.preimage
    }

    /// Checks one sub-solution: does the first `m` bits of
    /// `h(P ‖ i ‖ candidate)` equal the first `m` bits of `P`?
    ///
    /// `index` is 1-based, matching the paper's `1 ≤ i ≤ k`.
    pub fn sub_solution_ok(&self, index: u8, candidate: &[u8]) -> bool {
        sub_solution_ok(
            &ScalarBackend,
            &self.preimage,
            self.params.difficulty.m(),
            index,
            candidate,
        )
    }
}

/// Validates `(l, difficulty)` compatibility: `l` must be a non-zero
/// multiple of 8 no larger than [`MAX_PREIMAGE_BITS`], and `m < l`.
///
/// Public so issuing configurations can be validated once at build time
/// (e.g. a defense policy's constructor) and the per-SYN hot path can
/// rely on infallible issuance instead of re-checking every call.
///
/// # Errors
///
/// * [`IssueError::BadPreimageLength`] if `preimage_bits` is zero, not a
///   multiple of 8, or exceeds [`MAX_PREIMAGE_BITS`].
/// * [`IssueError::DifficultyExceedsPreimage`] if `m >= preimage_bits`.
pub fn validate_preimage_bits(
    preimage_bits: u16,
    difficulty: Difficulty,
) -> Result<(), IssueError> {
    if preimage_bits == 0 || !preimage_bits.is_multiple_of(8) || preimage_bits > MAX_PREIMAGE_BITS {
        return Err(IssueError::BadPreimageLength(preimage_bits));
    }
    if difficulty.m() as u16 >= preimage_bits {
        return Err(IssueError::DifficultyExceedsPreimage {
            m: difficulty.m(),
            l: preimage_bits,
        });
    }
    Ok(())
}

/// `P = first l bits of h(secret ‖ T ‖ packet-data)` — paper Figure 2.
///
/// Generic over the [`HashBackend`] so batch/SIMD backends serve the same
/// derivation (one hash, g(p) = 1).
pub fn compute_preimage<B: HashBackend>(
    backend: &B,
    secret: &ServerSecret,
    tuple: &ConnectionTuple,
    timestamp: u32,
    len_bytes: usize,
) -> Vec<u8> {
    let digest = backend.sha256_parts(&[
        secret.as_bytes(),
        &timestamp.to_be_bytes(),
        &tuple.to_bytes(),
    ]);
    digest[..len_bytes].to_vec()
}

/// Appends the exact message bytes hashed by [`compute_preimage`] to the
/// batch arena — the unit the batched verifier hands to
/// [`HashBackend::sha256_arena`]. Writing straight into the arena keeps
/// the round loop allocation-free.
pub(crate) fn push_preimage_message(
    arena: &mut MessageArena,
    secret: &ServerSecret,
    tuple: &ConnectionTuple,
    timestamp: u32,
) {
    let ts = timestamp.to_be_bytes();
    let tb = tuple.to_bytes();
    arena.push_parts(&[secret.as_bytes(), &ts, &tb]);
}

/// `P = first l bits of h(N_w ‖ packet-data)` — the near-stateless
/// variant of [`compute_preimage`], binding the challenge to a
/// PRF-derived window nonce `N_w` instead of `(secret, T)` directly.
/// The window index travels in the challenge's `timestamp` field, so
/// verification recomputes the same nonce from echoed fields alone.
pub fn compute_windowed_preimage<B: HashBackend>(
    backend: &B,
    nonce: &puzzle_crypto::Digest,
    tuple: &ConnectionTuple,
    len_bytes: usize,
) -> Vec<u8> {
    let digest = backend.sha256_parts(&[nonce, &tuple.to_bytes()]);
    digest[..len_bytes].to_vec()
}

/// Appends the exact message bytes hashed by
/// [`compute_windowed_preimage`] to the batch arena. The message is
/// `32 + 16 = 48` bytes — within one SHA-256 block, so batched windowed
/// issuance stays one compression per SYN.
pub(crate) fn push_windowed_preimage_message(
    arena: &mut MessageArena,
    nonce: &puzzle_crypto::Digest,
    tuple: &ConnectionTuple,
) {
    let tb = tuple.to_bytes();
    arena.push_parts(&[nonce, &tb]);
}

/// The sub-solution tag `h(P ‖ i ‖ candidate)` — the digest every
/// puzzle algorithm's predicate is built from (the prefix puzzle
/// matches it against `P`, the collision puzzle against a second tag).
pub(crate) fn sub_solution_digest<B: HashBackend>(
    backend: &B,
    preimage: &[u8],
    index: u8,
    candidate: &[u8],
) -> puzzle_crypto::Digest {
    backend.sha256_parts(&[preimage, &[index], candidate])
}

/// Shared sub-solution predicate used by both solver and verifier.
pub(crate) fn sub_solution_ok<B: HashBackend>(
    backend: &B,
    preimage: &[u8],
    m: u8,
    index: u8,
    candidate: &[u8],
) -> bool {
    let digest = sub_solution_digest(backend, preimage, index, candidate);
    leading_bits_match(&digest, preimage, m as usize)
}

/// Appends the exact message bytes hashed by [`sub_solution_ok`] to the
/// batch arena — the unit the batched verifier hands to
/// [`HashBackend::sha256_arena`].
pub(crate) fn push_sub_solution_message(
    arena: &mut MessageArena,
    preimage: &[u8],
    index: u8,
    candidate: &[u8],
) {
    arena.push_parts(&[preimage, &[index], candidate]);
}

/// Do the first `m` bits of `a` and `b` agree?
pub(crate) fn leading_bits_match(a: &[u8], b: &[u8], m: usize) -> bool {
    let full = m / 8;
    let rem = m % 8;
    debug_assert!(a.len() >= full + usize::from(rem > 0));
    debug_assert!(b.len() >= full + usize::from(rem > 0));
    if a[..full] != b[..full] {
        return false;
    }
    if rem == 0 {
        return true;
    }
    ((a[full] ^ b[full]) >> (8 - rem)) == 0
}

/// A full solution: `k` sub-solutions of `l` bits each, in index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    proofs: Vec<Vec<u8>>,
}

impl Solution {
    /// Wraps sub-solutions (index order, 1-based index `i` = position
    /// `i − 1`).
    pub fn new(proofs: Vec<Vec<u8>>) -> Self {
        Solution { proofs }
    }

    /// The sub-solutions in index order.
    pub fn proofs(&self) -> &[Vec<u8>] {
        &self.proofs
    }

    /// Number of sub-solutions carried.
    pub fn len(&self) -> usize {
        self.proofs.len()
    }

    /// True if no sub-solutions are present.
    pub fn is_empty(&self) -> bool {
        self.proofs.is_empty()
    }

    /// Total payload bytes when serialized (sum of sub-solution lengths).
    pub fn wire_len(&self) -> usize {
        self.proofs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn secret() -> ServerSecret {
        ServerSecret::from_bytes([3u8; 32])
    }

    fn tuple() -> ConnectionTuple {
        ConnectionTuple::new(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            7,
        )
    }

    fn diff(k: u8, m: u8) -> Difficulty {
        Difficulty::new(k, m).unwrap()
    }

    #[test]
    fn issue_is_deterministic_and_stateless() {
        let c1 = Challenge::issue(&secret(), &tuple(), 5, diff(2, 8), 64).unwrap();
        let c2 = Challenge::issue(&secret(), &tuple(), 5, diff(2, 8), 64).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(c1.preimage().len(), 8);
    }

    #[test]
    fn preimage_depends_on_every_input() {
        let base = Challenge::issue(&secret(), &tuple(), 5, diff(1, 8), 64).unwrap();
        let other_t = Challenge::issue(&secret(), &tuple(), 6, diff(1, 8), 64).unwrap();
        assert_ne!(base.preimage(), other_t.preimage());

        let mut t2 = tuple();
        t2.src_port += 1;
        let other_tuple = Challenge::issue(&secret(), &t2, 5, diff(1, 8), 64).unwrap();
        assert_ne!(base.preimage(), other_tuple.preimage());

        let other_secret = ServerSecret::from_bytes([4u8; 32]);
        let other_s = Challenge::issue(&other_secret, &tuple(), 5, diff(1, 8), 64).unwrap();
        assert_ne!(base.preimage(), other_s.preimage());
    }

    #[test]
    fn preimage_is_hash_truncation() {
        let c8 = Challenge::issue(&secret(), &tuple(), 5, diff(1, 7), 8).unwrap();
        let c64 = Challenge::issue(&secret(), &tuple(), 5, diff(1, 7), 64).unwrap();
        assert_eq!(c8.preimage(), &c64.preimage()[..1]);
    }

    #[test]
    fn validation_rejects_bad_lengths() {
        assert_eq!(
            Challenge::issue(&secret(), &tuple(), 0, diff(1, 8), 0).unwrap_err(),
            IssueError::BadPreimageLength(0)
        );
        assert_eq!(
            Challenge::issue(&secret(), &tuple(), 0, diff(1, 8), 12).unwrap_err(),
            IssueError::BadPreimageLength(12)
        );
        assert_eq!(
            Challenge::issue(&secret(), &tuple(), 0, diff(1, 8), 256).unwrap_err(),
            IssueError::BadPreimageLength(256)
        );
        assert_eq!(
            Challenge::issue(&secret(), &tuple(), 0, diff(1, 16), 16).unwrap_err(),
            IssueError::DifficultyExceedsPreimage { m: 16, l: 16 }
        );
    }

    #[test]
    fn from_wire_round_trips() {
        let c = Challenge::issue(&secret(), &tuple(), 9, diff(2, 10), 64).unwrap();
        let rebuilt = Challenge::from_wire(c.params(), c.preimage().to_vec()).unwrap();
        assert_eq!(c, rebuilt);
        // Wrong pre-image length rejected.
        assert!(Challenge::from_wire(c.params(), vec![0; 7]).is_err());
    }

    #[test]
    fn from_wire_reports_oversized_preimage_without_wrapping() {
        // Regression: the error payload used to be computed as
        // `len as u16 * 8`, so an 8192-byte wire pre-image reported a
        // bit length of 0 (8192 * 8 = 65536 ≡ 0 mod 2^16). Oversized
        // pre-images must saturate instead.
        let c = Challenge::issue(&secret(), &tuple(), 9, diff(2, 10), 64).unwrap();
        assert_eq!(
            Challenge::from_wire(c.params(), vec![0; 8192]).unwrap_err(),
            IssueError::BadPreimageLength(u16::MAX)
        );
        // A merely-wrong (in-range) length still reports exactly.
        assert_eq!(
            Challenge::from_wire(c.params(), vec![0; 7]).unwrap_err(),
            IssueError::BadPreimageLength(56)
        );
    }

    #[test]
    fn windowed_preimage_binds_nonce_and_tuple() {
        use puzzle_crypto::{ScalarBackend, WindowPrf};
        let prf = WindowPrf::new(secret().as_bytes(), 8);
        let p = compute_windowed_preimage(&ScalarBackend, &prf.nonce(3), &tuple(), 8);
        assert_eq!(p.len(), 8);
        // Same (window, tuple) is deterministic; either input changes it.
        assert_eq!(
            p,
            compute_windowed_preimage(&ScalarBackend, &prf.nonce(3), &tuple(), 8)
        );
        assert_ne!(
            p,
            compute_windowed_preimage(&ScalarBackend, &prf.nonce(4), &tuple(), 8)
        );
        let mut t2 = tuple();
        t2.src_port += 1;
        assert_ne!(
            p,
            compute_windowed_preimage(&ScalarBackend, &prf.nonce(3), &t2, 8)
        );
        // Arena staging hashes the identical message.
        let mut arena = MessageArena::default();
        push_windowed_preimage_message(&mut arena, &prf.nonce(3), &tuple());
        let mut digests = Vec::new();
        ScalarBackend.sha256_arena(&arena, &mut digests);
        assert_eq!(p, digests[0][..8].to_vec());
    }

    #[test]
    fn leading_bits_match_edge_cases() {
        let a = [0b1010_1010, 0xff];
        let b = [0b1010_1011, 0x00];
        assert!(leading_bits_match(&a, &b, 7)); // differ only in bit 8
        assert!(!leading_bits_match(&a, &b, 8));
        assert!(leading_bits_match(&a, &a, 16));
        assert!(leading_bits_match(&a, &b, 1));
    }

    #[test]
    fn sub_solution_check_is_consistent() {
        let c = Challenge::issue(&secret(), &tuple(), 5, diff(1, 4), 64).unwrap();
        // Find a solution by brute force, then check index sensitivity.
        let mut candidate = [0u8; 8];
        let mut found = None;
        for i in 0u64..100_000 {
            candidate = i.to_le_bytes();
            if c.sub_solution_ok(1, &candidate) {
                found = Some(candidate);
                break;
            }
        }
        let sol = found.expect("m=4 must be solvable quickly");
        assert!(c.sub_solution_ok(1, &sol));
        // The same bytes almost surely fail for a different index.
        // (Probability of accidental pass is 2^-4; check it is not trivially true.)
        let _ = c.sub_solution_ok(2, &candidate);
    }

    #[test]
    fn solution_accessors() {
        let s = Solution::new(vec![vec![1; 8], vec![2; 8]]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.wire_len(), 16);
        assert_eq!(s.proofs()[1], vec![2; 8]);
        assert!(Solution::new(vec![]).is_empty());
    }
}
