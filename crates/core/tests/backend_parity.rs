//! Property: `verify_batch` verdicts and hash charges are identical for
//! every hash backend — scalar, multi-lane, SHA-NI (when the CPU has it),
//! and the auto-selected engine — and for the sharded parallel mode.
//!
//! The backends are digest-identical by construction (proptested in
//! `puzzle-crypto`); this test closes the loop at the protocol layer,
//! where a divergence would silently change which connections a defended
//! server admits.

use proptest::prelude::*;
use puzzle_core::{
    BatchOutcome, ConnectionTuple, Difficulty, ServerSecret, Solution, Solver, Verifier,
    VerifyRequest,
};
use puzzle_crypto::{auto_backend, HashBackend, MultiLaneBackend, ScalarBackend, ShaNiBackend};
use std::net::Ipv4Addr;

fn arb_tuple() -> impl Strategy<Value = ConnectionTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(|(src, sp, dst, dp, isn)| {
            ConnectionTuple::new(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp, isn)
        })
}

/// Builds a request mix under the scalar verifier: valid solutions plus
/// the tampering shapes the sequential path classifies.
fn build_requests(
    tuples: &[ConnectionTuple],
    mutations: &[u8],
    k: u8,
    m: u8,
    ts: u32,
) -> Vec<VerifyRequest> {
    let secret = ServerSecret::from_bytes([9u8; 32]);
    let issuer = Verifier::new(secret).with_expiry(8);
    let difficulty = Difficulty::new(k, m).unwrap();
    let mut requests = Vec::new();
    for (tuple, mutation) in tuples.iter().zip(mutations.iter().cycle()) {
        let challenge = issuer.issue(tuple, ts, difficulty, 64).unwrap();
        let solved = Solver::new().solve(&challenge);
        let mut params = challenge.params();
        let mut tuple = *tuple;
        let mut solution = solved.solution;
        match mutation {
            0 => {} // valid
            1 => {
                let mut proofs = solution.proofs().to_vec();
                proofs[0][0] ^= 0x80;
                solution = Solution::new(proofs);
            }
            2 => params.timestamp = ts.saturating_sub(100), // expired
            3 => solution = Solution::new(vec![]),          // wrong count
            _ => tuple.src_port ^= 1,                       // wrong tuple
        }
        requests.push((tuple, params, solution));
    }
    requests
}

fn verify_with<B: HashBackend>(backend: B, requests: &[VerifyRequest], ts: u32) -> BatchOutcome {
    Verifier::with_backend(ServerSecret::from_bytes([9u8; 32]), backend)
        .with_expiry(8)
        .verify_batch(requests, ts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every backend produces the scalar baseline's verdicts and hash
    /// charges, batch after batch, and the parallel engine agrees too.
    #[test]
    fn all_backends_agree_with_scalar(
        tuples in prop::collection::vec(arb_tuple(), 1..10),
        mutations in prop::collection::vec(0u8..5, 1..10),
        k in 1u8..3,
        m in 1u8..7,
        ts in 100u32..1_000_000,
    ) {
        let requests = build_requests(&tuples, &mutations, k, m, ts);
        let baseline = verify_with(ScalarBackend, &requests, ts);

        let lanes = verify_with(MultiLaneBackend, &requests, ts);
        prop_assert_eq!(&lanes.verdicts, &baseline.verdicts);
        prop_assert_eq!(lanes.hashes, baseline.hashes);

        let auto = verify_with(auto_backend(), &requests, ts);
        prop_assert_eq!(&auto.verdicts, &baseline.verdicts);
        prop_assert_eq!(auto.hashes, baseline.hashes);

        if let Some(ni) = ShaNiBackend::new() {
            let shani = verify_with(ni, &requests, ts);
            prop_assert_eq!(&shani.verdicts, &baseline.verdicts);
            prop_assert_eq!(shani.hashes, baseline.hashes);
        }

        let parallel = Verifier::with_backend(
            ServerSecret::from_bytes([9u8; 32]),
            auto_backend(),
        )
        .with_expiry(8)
        .verify_batch_parallel(&requests, ts, 4);
        prop_assert_eq!(&parallel.verdicts, &baseline.verdicts);
        prop_assert_eq!(parallel.hashes, baseline.hashes);
    }
}
