//! Property: `verify_batch` accepts/rejects exactly the same set as
//! sequential `verify`, with identical error verdicts and hash charges.

use proptest::prelude::*;
use puzzle_core::{
    ConnectionTuple, Difficulty, ServerSecret, Solution, Solver, Verifier, VerifyRequest,
};
use std::net::Ipv4Addr;

fn arb_tuple() -> impl Strategy<Value = ConnectionTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(|(src, sp, dst, dp, isn)| {
            ConnectionTuple::new(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp, isn)
        })
}

/// How one batched request is constructed: a fresh valid solution, or one
/// of the tamperings the sequential path classifies.
fn arb_mutation() -> impl Strategy<Value = u8> {
    0u8..6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch verdicts and hash charges equal the sequential ones for
    /// arbitrary mixes of valid, tampered, stale, and malformed requests.
    #[test]
    fn batch_equals_sequential(
        tuples in prop::collection::vec(arb_tuple(), 1..8),
        mutations in prop::collection::vec(arb_mutation(), 1..8),
        k in 1u8..3,
        m in 1u8..7,
        ts in 100u32..1_000_000,
    ) {
        let secret = ServerSecret::from_bytes([9u8; 32]);
        let verifier = Verifier::new(secret).with_expiry(8);
        let difficulty = Difficulty::new(k, m).unwrap();

        let mut requests: Vec<VerifyRequest> = Vec::new();
        for (tuple, mutation) in tuples.iter().zip(mutations.iter().cycle()) {
            let challenge = verifier.issue(tuple, ts, difficulty, 64).unwrap();
            let solved = Solver::new().solve(&challenge);
            let mut params = challenge.params();
            let mut tuple = *tuple;
            let mut solution = solved.solution;
            match mutation {
                0 => {} // valid
                1 => {
                    // Corrupt the first proof.
                    let mut proofs = solution.proofs().to_vec();
                    proofs[0][0] ^= 0x80;
                    solution = Solution::new(proofs);
                }
                2 => {
                    // Corrupt the last proof.
                    let mut proofs = solution.proofs().to_vec();
                    proofs.last_mut().unwrap()[1] ^= 0x40;
                    solution = Solution::new(proofs);
                }
                3 => params.timestamp = ts.saturating_sub(100), // expired
                4 => solution = Solution::new(vec![]),          // wrong count
                _ => tuple.src_port ^= 1,                       // wrong tuple
            }
            requests.push((tuple, params, solution));
        }

        let out = verifier.verify_batch(&requests, ts);
        prop_assert_eq!(out.verdicts.len(), requests.len());
        let mut sequential_hashes = 0u64;
        for ((tuple, params, solution), batch_verdict) in requests.iter().zip(&out.verdicts) {
            let (seq_verdict, hashes) = verifier.verify_counted(tuple, params, solution, ts);
            prop_assert_eq!(&seq_verdict, batch_verdict);
            sequential_hashes += hashes;
        }
        prop_assert_eq!(out.hashes, sequential_hashes);
    }
}
