//! Steady-state batch verification — and batch issuance — perform zero
//! heap allocations.
//!
//! This is the guarantee the `BatchScratch`/`IssueScratch`/
//! `MessageArena` redesign exists for: after warm-up, neither
//! `Verifier::verify_batch_with` nor `Verifier::issue_batch` may touch
//! the allocator, no matter which hash backend drives them. The test
//! binary installs the counting allocator from `testkit-alloc` and
//! measures the delta across warmed calls.
//!
//! Kept as its own integration-test binary with a single `#[test]` so no
//! concurrent test can inflate the process-global counters.

use puzzle_core::{BatchScratch, ConnectionTuple, Difficulty, ServerSecret, Solver, Verifier};
use puzzle_core::{IssueScratch, Solution, VerifyRequest};
use puzzle_crypto::{auto_backend, HashBackend, MultiLaneBackend, ScalarBackend};

#[global_allocator]
static ALLOC: testkit_alloc::CountingAllocator = testkit_alloc::CountingAllocator;

fn requests_for<B: HashBackend>(verifier: &Verifier<B>, n: usize) -> Vec<VerifyRequest> {
    let d = Difficulty::new(2, 8).expect("valid difficulty");
    (0..n)
        .map(|i| {
            let tuple = ConnectionTuple::new(
                "10.0.0.2".parse().expect("addr"),
                40_000 + i as u16,
                "10.0.0.1".parse().expect("addr"),
                80,
                0x4000 + i as u32,
            );
            let challenge = verifier.issue(&tuple, 100, d, 32).expect("valid");
            let solved = Solver::new().solve(&challenge);
            (tuple, challenge.params(), solved.solution)
        })
        .collect()
}

fn assert_allocation_free<B: HashBackend>(backend: B) {
    let name = backend.name();
    let verifier = Verifier::with_backend(ServerSecret::from_bytes([9; 32]), backend);
    let mut requests = requests_for(&verifier, 64);
    // Mix in rejection shapes so the early-exit branches run too.
    requests[7].2 = Solution::new(vec![vec![0u8; 4], vec![1u8; 4]]); // invalid proofs
    requests[11].1.timestamp = 9999; // future → structural reject

    let mut scratch = BatchScratch::new();
    // Warm-up: buffers grow to their high-water capacity.
    let expected = verifier.verify_batch_with(&requests, 100, &mut scratch);
    assert_eq!(scratch.accepted(), 62, "backend {name}");
    verifier.verify_batch_with(&requests, 100, &mut scratch);

    // Steady state: not a single allocator call.
    let before = testkit_alloc::allocation_count();
    let hashes = verifier.verify_batch_with(&requests, 100, &mut scratch);
    let after = testkit_alloc::allocation_count();
    assert_eq!(hashes, expected, "backend {name}");
    assert_eq!(
        after - before,
        0,
        "backend {name}: steady-state verify_batch allocated"
    );
}

fn assert_issuance_allocation_free<B: HashBackend>(backend: B) {
    let name = backend.name();
    let verifier = Verifier::with_backend(ServerSecret::from_bytes([9; 32]), backend);
    // The paper's operating point: difficulty (2, 17), 32-bit pre-images,
    // at the SYN-flood flush size the tcpstack issuance path batches at.
    let d = Difficulty::new(2, 17).expect("valid difficulty");
    let tuples: Vec<ConnectionTuple> = (0..256)
        .map(|i| {
            ConnectionTuple::new(
                "10.0.0.2".parse().expect("addr"),
                40_000 + i as u16,
                "10.0.0.1".parse().expect("addr"),
                80,
                0x4000 + i as u32,
            )
        })
        .collect();

    let mut scratch = IssueScratch::new();
    // Warm-up: arena and digest buffers grow to high-water capacity.
    let expected = verifier
        .issue_batch(&tuples, 100, d, 32, &mut scratch)
        .expect("valid");
    assert_eq!(scratch.len(), 256, "backend {name}");
    // Batched pre-images must be exactly the sequential ones.
    for (i, tuple) in tuples.iter().enumerate().step_by(85) {
        let challenge = verifier.issue(tuple, 100, d, 32).expect("valid");
        assert_eq!(scratch.preimage(i), challenge.preimage(), "backend {name}");
    }
    verifier
        .issue_batch(&tuples, 100, d, 32, &mut scratch)
        .expect("valid");

    // Steady state: not a single allocator call.
    let before = testkit_alloc::allocation_count();
    let params = verifier
        .issue_batch(&tuples, 100, d, 32, &mut scratch)
        .expect("valid");
    let after = testkit_alloc::allocation_count();
    assert_eq!(params, expected, "backend {name}");
    assert_eq!(
        after - before,
        0,
        "backend {name}: steady-state issue_batch allocated"
    );
}

#[test]
fn steady_state_verify_batch_is_allocation_free() {
    assert_allocation_free(ScalarBackend);
    assert_allocation_free(MultiLaneBackend);
    // Whatever this machine's best backend is (SHA-NI where present).
    assert_allocation_free(auto_backend());

    assert_issuance_allocation_free(ScalarBackend);
    assert_issuance_allocation_free(MultiLaneBackend);
    assert_issuance_allocation_free(auto_backend());
}
