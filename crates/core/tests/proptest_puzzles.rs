//! Property-based tests for the puzzle protocol invariants.

use proptest::prelude::*;
use puzzle_core::{
    Challenge, ChallengeParams, ConnectionTuple, Difficulty, ServerSecret, Solution, Solver,
    Verifier,
};
use std::net::Ipv4Addr;

fn arb_tuple() -> impl Strategy<Value = ConnectionTuple> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(|(src, sp, dst, dp, isn)| {
            ConnectionTuple::new(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp, isn)
        })
}

fn arb_secret() -> impl Strategy<Value = ServerSecret> {
    any::<[u8; 32]>().prop_map(ServerSecret::from_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the parameters, a freshly solved challenge verifies.
    #[test]
    fn solve_then_verify_round_trips(
        secret in arb_secret(),
        tuple in arb_tuple(),
        ts in 0u32..1_000_000,
        k in 1u8..4,
        m in 1u8..9,
        l_bytes in 2usize..16,
    ) {
        let difficulty = Difficulty::new(k, m).unwrap();
        let l_bits = (l_bytes * 8) as u16;
        prop_assume!((m as u16) < l_bits);
        let verifier = Verifier::new(secret).with_expiry(10);
        let challenge = verifier.issue(&tuple, ts, difficulty, l_bits).unwrap();
        let out = Solver::new().solve(&challenge);
        prop_assert_eq!(
            verifier.verify(&tuple, &challenge.params(), &out.solution, ts),
            Ok(())
        );
        // Work accounting is self-consistent.
        prop_assert_eq!(out.per_sub_puzzle.len(), k as usize);
        prop_assert_eq!(out.per_sub_puzzle.iter().sum::<u64>(), out.hashes);
    }

    /// A solution never verifies under a different secret (up to the 2^-m
    /// guess probability; with m >= 8 and 3 sub-puzzles the flake chance is
    /// below 2^-24 per case).
    #[test]
    fn wrong_secret_rejected(
        tuple in arb_tuple(),
        ts in 0u32..1_000_000,
    ) {
        let s1 = ServerSecret::from_bytes([1; 32]);
        let s2 = ServerSecret::from_bytes([2; 32]);
        let difficulty = Difficulty::new(3, 8).unwrap();
        let v1 = Verifier::new(s1).with_expiry(10);
        let v2 = Verifier::new(s2).with_expiry(10);
        let challenge = v1.issue(&tuple, ts, difficulty, 64).unwrap();
        let out = Solver::new().solve(&challenge);
        prop_assert!(v2.verify(&tuple, &challenge.params(), &out.solution, ts).is_err());
    }

    /// Verification binds the connection tuple: flipping any field of the
    /// tuple invalidates a valid solution.
    #[test]
    fn tuple_binding(
        secret in arb_secret(),
        tuple in arb_tuple(),
        ts in 0u32..1_000_000,
        which in 0usize..5,
    ) {
        let difficulty = Difficulty::new(2, 8).unwrap();
        let verifier = Verifier::new(secret).with_expiry(10);
        let challenge = verifier.issue(&tuple, ts, difficulty, 64).unwrap();
        let out = Solver::new().solve(&challenge);

        let mut other = tuple;
        match which {
            0 => other.src_ip = Ipv4Addr::from(u32::from(other.src_ip) ^ 1),
            1 => other.src_port ^= 1,
            2 => other.dst_ip = Ipv4Addr::from(u32::from(other.dst_ip) ^ 1),
            3 => other.dst_port ^= 1,
            _ => other.isn ^= 1,
        }
        prop_assert!(verifier.verify(&other, &challenge.params(), &out.solution, ts).is_err());
    }

    /// Timestamps outside the window are always rejected, regardless of
    /// solution validity.
    #[test]
    fn expiry_window_enforced(
        secret in arb_secret(),
        tuple in arb_tuple(),
        ts in 100u32..1_000_000,
        age in 0u32..50,
    ) {
        let difficulty = Difficulty::new(1, 4).unwrap();
        let max_age = 8;
        let verifier = Verifier::new(secret).with_expiry(max_age);
        let challenge = verifier.issue(&tuple, ts, difficulty, 64).unwrap();
        let out = Solver::new().solve(&challenge);
        let res = verifier.verify(&tuple, &challenge.params(), &out.solution, ts + age);
        if age <= max_age {
            prop_assert_eq!(res, Ok(()));
        } else {
            prop_assert!(res.is_err());
        }
    }

    /// Random garbage almost never verifies: with m = 16 and k = 2 the
    /// acceptance probability is 2^-32 per attempt.
    #[test]
    fn bogus_solutions_rejected(
        secret in arb_secret(),
        tuple in arb_tuple(),
        garbage in prop::collection::vec(prop::collection::vec(any::<u8>(), 8), 2),
    ) {
        let difficulty = Difficulty::new(2, 16).unwrap();
        let verifier = Verifier::new(secret).with_expiry(10);
        let params = ChallengeParams { difficulty, preimage_bits: 64, timestamp: 5 };
        let bogus = Solution::new(garbage);
        prop_assert!(verifier.verify(&tuple, &params, &bogus, 5).is_err());
    }

    /// The wire-reconstruction path accepts exactly the server's pre-image.
    #[test]
    fn from_wire_round_trip(
        secret in arb_secret(),
        tuple in arb_tuple(),
        ts in 0u32..1_000_000,
    ) {
        let difficulty = Difficulty::new(1, 6).unwrap();
        let c = Challenge::issue(&secret, &tuple, ts, difficulty, 64).unwrap();
        let rebuilt = Challenge::from_wire(c.params(), c.preimage().to_vec()).unwrap();
        prop_assert_eq!(&c, &rebuilt);
        let out = Solver::new().solve(&rebuilt);
        let verifier = Verifier::new(secret).with_expiry(10);
        prop_assert_eq!(verifier.verify(&tuple, &c.params(), &out.solution, ts), Ok(()));
    }
}
