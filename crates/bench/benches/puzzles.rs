//! Micro-benchmarks: puzzle issue, solve, verify — the per-connection
//! costs the paper's model accounts as g(p), ℓ(p), and d(p).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use puzzle_core::{
    sample_solve_hashes, AlgoId, Challenge, ConnectionTuple, Difficulty, ServerSecret,
    SolveCostModel, Solver, Verifier,
};
use std::hint::black_box;

fn tuple() -> ConnectionTuple {
    ConnectionTuple::new(
        "10.0.0.2".parse().expect("addr"),
        40_000,
        "10.0.0.1".parse().expect("addr"),
        80,
        0x1234,
    )
}

/// g(p): one hash per challenge, whatever the difficulty.
fn bench_issue(c: &mut Criterion) {
    let secret = ServerSecret::from_bytes([1; 32]);
    let d = Difficulty::new(2, 17).expect("valid");
    let t = tuple();
    c.bench_function("puzzle/issue(2,17)", |b| {
        b.iter(|| Challenge::issue(black_box(&secret), &t, 100, d, 32).expect("valid"))
    });
}

/// ℓ(p): brute-force solve cost doubles per difficulty bit.
fn bench_solve(c: &mut Criterion) {
    let secret = ServerSecret::from_bytes([2; 32]);
    let t = tuple();
    let mut g = c.benchmark_group("puzzle/solve");
    g.sample_size(10);
    for m in [4u8, 8, 12] {
        let challenge =
            Challenge::issue(&secret, &t, 100, Difficulty::new(1, m).expect("valid"), 32)
                .expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(m), &challenge, |b, ch| {
            b.iter(|| Solver::new().solve(black_box(ch)))
        });
    }
    g.finish();
}

/// ℓ(p) for the asymmetric algorithm: the memory-bound birthday solve —
/// √(π/2)·2^(m/2) expected tags per sub-puzzle plus the table the
/// hash-prefix solver never needs (that table is the asymmetry: GPU
/// hash pipelines don't shrink it).
fn bench_solve_collide(c: &mut Criterion) {
    let secret = ServerSecret::from_bytes([2; 32]);
    let t = tuple();
    let mut g = c.benchmark_group("solve/collide");
    g.sample_size(10);
    for m in [8u8, 12, 16] {
        let challenge =
            Challenge::issue(&secret, &t, 100, Difficulty::new(1, m).expect("valid"), 32)
                .expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(m), &challenge, |b, ch| {
            b.iter(|| {
                Solver::new()
                    .with_algo(AlgoId::Collide)
                    .solve(black_box(ch))
            })
        });
    }
    g.finish();
}

/// d(p): stateless verification — recompute pre-image + k sub-checks.
fn bench_verify(c: &mut Criterion) {
    let secret = ServerSecret::from_bytes([3; 32]);
    let t = tuple();
    let d = Difficulty::new(2, 10).expect("valid");
    let verifier = Verifier::new(secret.clone()).with_expiry(8);
    let challenge = verifier.issue(&t, 100, d, 32).expect("valid");
    let solved = Solver::new().solve(&challenge);
    c.bench_function("puzzle/verify(2,10)", |b| {
        b.iter(|| {
            verifier
                .verify(black_box(&t), &challenge.params(), &solved.solution, 100)
                .expect("valid")
        })
    });
}

/// The simulator's solve-cost sampling (hot path at high attack rates).
fn bench_cost_model(c: &mut Criterion) {
    let d = Difficulty::new(2, 17).expect("valid");
    let mut state = 0x123456789abcdefu64;
    c.bench_function("puzzle/sample_cost(2,17)", |b| {
        b.iter(|| {
            let mut f = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            sample_solve_hashes(d, SolveCostModel::UniformPlacement, &mut f)
        })
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_issue, bench_solve, bench_solve_collide, bench_verify, bench_cost_model}
criterion_main!(benches);
