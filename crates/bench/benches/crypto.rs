//! Micro-benchmarks: the crypto substrate (SHA-256, HMAC) and the
//! [`HashBackend`] seam the verification pipeline runs through — scalar
//! today, the comparison point for SIMD/multi-buffer backends tomorrow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use puzzle_core::{ConnectionTuple, Difficulty, ServerSecret, Solver, Verifier, VerifyRequest};
use puzzle_crypto::{sha256, HashBackend, HmacSha256, ScalarBackend, Sha256};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 256, 1024, 8192] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    g.finish();
}

fn bench_sha256_streaming(c: &mut Criterion) {
    let data = vec![0xcdu8; 4096];
    c.bench_function("sha256/streaming-4x1KiB", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for chunk in data.chunks(1024) {
                h.update(black_box(chunk));
            }
            h.finalize()
        })
    });
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = [1u8; 64];
    c.bench_function("hmac_sha256/64B", |b| {
        b.iter(|| HmacSha256::mac(black_box(&key), black_box(&msg)))
    });
}

/// The backend seam itself: batched independent hashing, the round shape
/// `verify_batch` feeds to SIMD-capable backends.
fn bench_backend_batch(c: &mut Criterion) {
    let backend = ScalarBackend;
    let mut g = c.benchmark_group("backend/sha256_batch");
    for n in [1usize, 16, 256] {
        let messages: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 52]).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &messages, |b, msgs| {
            let mut out = Vec::with_capacity(msgs.len());
            b.iter(|| {
                out.clear();
                backend.sha256_batch(black_box(msgs), &mut out);
            })
        });
    }
    g.finish();
}

/// Verify throughput through the backend seam: `verify_batch` over
/// pre-solved requests at increasing batch sizes, in solutions/second.
/// This is the perf-trajectory baseline (`BENCH_verify.json`).
fn bench_verify_batch(c: &mut Criterion) {
    let secret = ServerSecret::from_bytes([4; 32]);
    let verifier = Verifier::with_backend(secret, ScalarBackend).with_expiry(8);
    let d = Difficulty::new(2, 10).expect("valid");
    let mut g = c.benchmark_group("backend/verify_batch");
    for n in [1usize, 16, 256] {
        let requests: Vec<VerifyRequest> = (0..n)
            .map(|i| {
                let tuple = ConnectionTuple::new(
                    "10.0.0.2".parse().expect("addr"),
                    40_000 + i as u16,
                    "10.0.0.1".parse().expect("addr"),
                    80,
                    0x1234 + i as u32,
                );
                let challenge = verifier.issue(&tuple, 100, d, 32).expect("valid");
                let solved = Solver::new().solve(&challenge);
                (tuple, challenge.params(), solved.solution)
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &requests, |b, reqs| {
            b.iter(|| {
                let out = verifier.verify_batch(black_box(reqs), 100);
                assert_eq!(out.accepted(), reqs.len());
                out
            })
        });
    }
    g.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_sha256, bench_sha256_streaming, bench_hmac, bench_backend_batch, bench_verify_batch}
criterion_main!(benches);
