//! Micro-benchmarks: the crypto substrate (SHA-256, HMAC).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use puzzle_crypto::{sha256, HmacSha256, Sha256};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 256, 1024, 8192] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_sha256_streaming(c: &mut Criterion) {
    let data = vec![0xcdu8; 4096];
    c.bench_function("sha256/streaming-4x1KiB", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for chunk in data.chunks(1024) {
                h.update(black_box(chunk));
            }
            h.finalize()
        })
    });
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = [1u8; 64];
    c.bench_function("hmac_sha256/64B", |b| {
        b.iter(|| HmacSha256::mac(black_box(&key), black_box(&msg)))
    });
}

criterion_group!{name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_sha256, bench_sha256_streaming, bench_hmac}
criterion_main!(benches);
