//! Micro-benchmarks: the crypto substrate (SHA-256, HMAC) and the
//! [`HashBackend`] seam the verification pipeline runs through — every
//! shipped backend, so committed numbers are attributable per engine.
//!
//! Benchmark id scheme:
//!
//! * `backend/…` — the **portable** batch path ([`MultiLaneBackend`]; no
//!   SHA-NI required), the workspace's headline perf-trajectory ids
//!   tracked in `BENCH_verify.json`.
//! * `backend-scalar/…`, `backend-shani/…`, `backend-auto/…` — the same
//!   workloads per engine (`backend-shani` only where the CPU has the
//!   extension; `backend-auto` is whatever [`auto_backend`] picks on the
//!   machine that produced the report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use puzzle_core::{
    AlgoId, BatchScratch, ConnectionTuple, Difficulty, IssueScratch, ServerSecret, Solver,
    Verifier, VerifyRequest,
};
use puzzle_crypto::{
    auto_backend, sha256, HashBackend, HmacSha256, MessageArena, MultiLaneBackend, ScalarBackend,
    Sha256, ShaNiBackend,
};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 256, 1024, 8192] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| b.iter(|| sha256(black_box(&data))));
    }
    g.finish();
}

fn bench_sha256_streaming(c: &mut Criterion) {
    let data = vec![0xcdu8; 4096];
    c.bench_function("sha256/streaming-4x1KiB", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            for chunk in data.chunks(1024) {
                h.update(black_box(chunk));
            }
            h.finalize()
        })
    });
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = [1u8; 64];
    c.bench_function("hmac_sha256/64B", |b| {
        b.iter(|| HmacSha256::mac(black_box(&key), black_box(&msg)))
    });
}

/// Batched independent hashing through one backend: the round shape
/// `verify_batch` feeds to the seam, 52-byte messages (the pre-image
/// message size).
fn bench_backend_batch_for<B: HashBackend>(c: &mut Criterion, group: &str, backend: &B) {
    println!("backend: {group} runs the `{}` engine", backend.name());
    let mut g = c.benchmark_group(format!("{group}/sha256_batch"));
    for n in [1usize, 16, 256] {
        let mut arena = MessageArena::new();
        for i in 0..n {
            arena.push(&[i as u8; 52]);
        }
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &arena, |b, arena| {
            let mut out = Vec::with_capacity(arena.len());
            b.iter(|| {
                out.clear();
                backend.sha256_arena(black_box(arena), &mut out);
            })
        });
    }
    g.finish();
}

/// Verify throughput through one backend: `verify_batch_with` over
/// pre-solved requests at increasing batch sizes, in solutions/second,
/// through a reused scratch (the listener's steady state).
fn bench_verify_batch_for<B: HashBackend>(c: &mut Criterion, group: &str, backend: B) {
    let secret = ServerSecret::from_bytes([4; 32]);
    let verifier = Verifier::with_backend(secret, backend).with_expiry(8);
    let d = Difficulty::new(2, 10).expect("valid");
    let mut g = c.benchmark_group(format!("{group}/verify_batch"));
    for n in [1usize, 16, 256] {
        let requests: Vec<VerifyRequest> = (0..n)
            .map(|i| {
                let tuple = ConnectionTuple::new(
                    "10.0.0.2".parse().expect("addr"),
                    40_000 + i as u16,
                    "10.0.0.1".parse().expect("addr"),
                    80,
                    0x1234 + i as u32,
                );
                let challenge = verifier.issue(&tuple, 100, d, 32).expect("valid");
                let solved = Solver::new().solve(&challenge);
                (tuple, challenge.params(), solved.solution)
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &requests, |b, reqs| {
            let mut scratch = BatchScratch::new();
            b.iter(|| {
                let hashes = verifier.verify_batch_with(black_box(reqs), 100, &mut scratch);
                assert_eq!(scratch.accepted(), reqs.len());
                hashes
            })
        });
    }
    g.finish();
}

/// Verify throughput for the asymmetric collision puzzle through one
/// backend: same shape as `verify_batch` but the verifier recomputes
/// *two* tags per sub-solution (the colliding nonce pair), so the
/// guarded expectation is ≤ 2× the prefix verify bill at equal batch
/// size (`bench_check --max-ratio`).
fn bench_collide_verify_batch_for<B: HashBackend>(c: &mut Criterion, group: &str, backend: B) {
    let secret = ServerSecret::from_bytes([4; 32]);
    let verifier = Verifier::with_backend(secret, backend)
        .with_algo(AlgoId::Collide)
        .with_expiry(8);
    let d = Difficulty::new(2, 10).expect("valid");
    let mut g = c.benchmark_group(format!("{group}/collide_verify_batch"));
    for n in [16usize, 256] {
        let requests: Vec<VerifyRequest> = (0..n)
            .map(|i| {
                let tuple = ConnectionTuple::new(
                    "10.0.0.2".parse().expect("addr"),
                    40_000 + i as u16,
                    "10.0.0.1".parse().expect("addr"),
                    80,
                    0x1234 + i as u32,
                );
                let challenge = verifier.issue(&tuple, 100, d, 32).expect("valid");
                let solved = Solver::new().with_algo(AlgoId::Collide).solve(&challenge);
                (tuple, challenge.params(), solved.solution)
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &requests, |b, reqs| {
            let mut scratch = BatchScratch::new();
            b.iter(|| {
                let hashes = verifier.verify_batch_with(black_box(reqs), 100, &mut scratch);
                assert_eq!(scratch.accepted(), reqs.len());
                hashes
            })
        });
    }
    g.finish();
}

/// Issuance throughput through one backend: `issue_batch` over distinct
/// tuples at the paper's `(2, 17)` operating point with 32-bit
/// pre-images, through a reused scratch (the listener's steady state) —
/// the verify-side `verify_batch` group's issue-side twin.
fn bench_issue_batch_for<B: HashBackend>(c: &mut Criterion, group: &str, backend: B) {
    let secret = ServerSecret::from_bytes([4; 32]);
    let verifier = Verifier::with_backend(secret, backend);
    let d = Difficulty::new(2, 17).expect("valid");
    let mut g = c.benchmark_group(format!("{group}/issue_batch"));
    for n in [16usize, 256] {
        let tuples: Vec<ConnectionTuple> = (0..n)
            .map(|i| {
                ConnectionTuple::new(
                    "10.0.0.2".parse().expect("addr"),
                    40_000 + i as u16,
                    "10.0.0.1".parse().expect("addr"),
                    80,
                    0x1234 + i as u32,
                )
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &tuples, |b, tuples| {
            let mut scratch = IssueScratch::new();
            b.iter(|| {
                verifier
                    .issue_batch(black_box(tuples), 100, d, 32, &mut scratch)
                    .expect("valid")
            })
        });
    }
    g.finish();
}

/// The headline perf-trajectory ids (`backend/…`, tracked in
/// `BENCH_verify.json`): the portable multi-lane path — no hardware
/// extension required — plus per-engine attribution groups.
fn bench_backends(c: &mut Criterion) {
    bench_backend_batch_for(c, "backend", &MultiLaneBackend);
    bench_verify_batch_for(c, "backend", MultiLaneBackend);
    bench_collide_verify_batch_for(c, "backend", MultiLaneBackend);
    bench_issue_batch_for(c, "backend", MultiLaneBackend);

    bench_backend_batch_for(c, "backend-scalar", &ScalarBackend);
    bench_verify_batch_for(c, "backend-scalar", ScalarBackend);
    bench_collide_verify_batch_for(c, "backend-scalar", ScalarBackend);
    bench_issue_batch_for(c, "backend-scalar", ScalarBackend);

    if let Some(ni) = ShaNiBackend::new() {
        bench_backend_batch_for(c, "backend-shani", &ni);
        bench_verify_batch_for(c, "backend-shani", ni);
        bench_collide_verify_batch_for(c, "backend-shani", ni);
        bench_issue_batch_for(c, "backend-shani", ni);
    } else {
        println!("backend: backend-shani skipped (no SHA extensions on this CPU)");
    }

    let auto = auto_backend();
    bench_backend_batch_for(c, "backend-auto", &auto);
    bench_verify_batch_for(c, "backend-auto", auto);
    bench_collide_verify_batch_for(c, "backend-auto", auto);
    bench_issue_batch_for(c, "backend-auto", auto);
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_sha256, bench_sha256_streaming, bench_hmac, bench_backends}
criterion_main!(benches);
