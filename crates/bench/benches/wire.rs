//! Micro-benchmarks: TCP option codec, SYN-cookie codec, and the live
//! front-end's datagram framing.

use criterion::{criterion_group, criterion_main, Criterion};
use puzzle_core::AlgoId;
use std::hint::black_box;
use tcpstack::{
    ChallengeOption, SegmentBuilder, SolutionOption, SynCookieCodec, TcpFlags, TcpOption,
    TcpSegment,
};

fn challenge_options() -> Vec<TcpOption> {
    vec![
        TcpOption::Mss(1460),
        TcpOption::Timestamps {
            tsval: 77,
            tsecr: 0,
        },
        TcpOption::Challenge(ChallengeOption {
            k: 2,
            m: 17,
            preimage: vec![1, 2, 3, 4],
            timestamp: None,
            algo: AlgoId::Prefix,
        }),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let opts = challenge_options();
    c.bench_function("wire/options_encode", |b| {
        b.iter(|| TcpOption::encode_all(black_box(&opts)))
    });
}

fn bench_decode(c: &mut Criterion) {
    let bytes = TcpOption::encode_all(&challenge_options());
    c.bench_function("wire/options_decode", |b| {
        b.iter(|| TcpOption::decode_all(black_box(&bytes)).expect("valid"))
    });
}

fn bench_solution_split(c: &mut Criterion) {
    let sol = SolutionOption::build(1460, 7, &[vec![1; 4], vec![2; 4]], None);
    c.bench_function("wire/solution_split", |b| {
        b.iter(|| sol.split(2, 32, AlgoId::Prefix, false).expect("valid"))
    });
}

fn bench_cookies(c: &mut Criterion) {
    let codec = SynCookieCodec::new([9; 32]);
    let src = "10.0.0.2".parse().expect("addr");
    let dst = "10.0.0.1".parse().expect("addr");
    c.bench_function("wire/cookie_encode", |b| {
        b.iter(|| codec.encode(black_box(src), 40_000, dst, 80, 0x1234, 1460, 5))
    });
    let cookie = codec.encode(src, 40_000, dst, 80, 0x1234, 1460, 5);
    c.bench_function("wire/cookie_validate", |b| {
        b.iter(|| {
            codec
                .validate(black_box(src), 40_000, dst, 80, 0x1234, cookie, 5)
                .expect("valid")
        })
    });
}

/// A SYN-ACK-with-challenge segment — the live path's hottest reply
/// shape under flood.
fn challenge_segment() -> TcpSegment {
    let mut b = SegmentBuilder::new(80, 40_000)
        .flags(TcpFlags::SYN | TcpFlags::ACK)
        .seq(0x1234_5678)
        .ack_num(0x9ABC_DEF0)
        .window(65_535);
    for opt in challenge_options() {
        b = b.option(opt);
    }
    b.build()
}

fn bench_frame(c: &mut Criterion) {
    let endpoint = "198.18.0.7".parse().expect("addr");
    let seg = challenge_segment();
    let mut out = Vec::with_capacity(wire::MAX_FRAME_LEN);
    c.bench_function("wire/frame_encode", |b| {
        b.iter(|| {
            out.clear();
            wire::encode_frame(black_box(endpoint), black_box(&seg), &mut out);
            out.len()
        })
    });
    let mut bytes = Vec::new();
    wire::encode_frame(endpoint, &seg, &mut bytes);
    c.bench_function("wire/frame_decode", |b| {
        b.iter(|| wire::decode_frame(black_box(&bytes)).expect("valid"))
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_encode, bench_decode, bench_solution_split, bench_cookies, bench_frame}
criterion_main!(benches);
