//! Micro-benchmarks: listener fast paths — what bounds the server's
//! packets-per-second under each defence — plus the simulation engine's
//! event queue (timer wheel vs. the heap reference) and a fleet-scale
//! scenario step.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::{DefenseSpec, Matrix, Timeline};
use hostsim::FleetAttack;
use netsim::wheel::{HeapQueue, TimerWheel};
use netsim::{SimDuration, SimTime};
use puzzle_core::{AlgoId, Difficulty, ServerSecret};
use std::hint::black_box;
use std::net::Ipv4Addr;
use tcpstack::{
    Listener, ListenerConfig, PolicyBuilder, PuzzleConfig, SegmentBuilder, ShardedListener,
    TcpFlags, TcpSegment, VerifyMode,
};

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn listener(defense: PolicyBuilder<puzzle_crypto::ScalarBackend>, backlog: usize) -> Listener {
    let mut cfg = ListenerConfig::new(SERVER, 80);
    cfg.backlog = backlog;
    Listener::with_policy(
        cfg,
        ServerSecret::from_bytes([7; 32]),
        puzzle_crypto::ScalarBackend,
        &defense,
    )
}

fn syn(port: u16) -> tcpstack::TcpSegment {
    SegmentBuilder::new(port, 80)
        .seq(1)
        .flags(TcpFlags::SYN)
        .mss(1460)
        .timestamps(1, 0)
        .build()
}

/// Stateful SYN handling (half-open creation + SYN-ACK).
fn bench_syn_stateful(c: &mut Criterion) {
    c.bench_function("stack/syn_stateful", |b| {
        let mut l = listener(PolicyBuilder::none(), usize::MAX);
        let mut port = 1000u16;
        let src = Ipv4Addr::new(10, 0, 0, 2);
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            l.on_segment(SimTime::ZERO, src, black_box(&syn(port)))
        })
    });
}

/// Stateless cookie SYN-ACK generation under overflow.
fn bench_syn_cookie(c: &mut Criterion) {
    c.bench_function("stack/syn_cookie", |b| {
        let mut l = listener(PolicyBuilder::syn_cookies(), 0);
        let src = Ipv4Addr::new(10, 0, 0, 3);
        let seg = syn(2000);
        b.iter(|| l.on_segment(SimTime::ZERO, src, black_box(&seg)))
    });
}

/// Stateless challenge generation under overflow (g(p) = 1 hash).
fn bench_syn_challenge(c: &mut Criterion) {
    let pc = PuzzleConfig {
        algo: AlgoId::Prefix,
        difficulty: Difficulty::new(2, 17).expect("valid"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Real,
        hold: SimDuration::ZERO,
        verify_workers: 1,
    };
    c.bench_function("stack/syn_challenge", |b| {
        let mut l = listener(PolicyBuilder::puzzles(pc.clone()), 0);
        let src = Ipv4Addr::new(10, 0, 0, 4);
        let seg = syn(3000);
        b.iter(|| l.on_segment(SimTime::ZERO, src, black_box(&seg)))
    });
}

/// Batched issuance vs the scalar per-SYN baseline over the same
/// 256-SYN flood against latched puzzles. Both ids process the full
/// batch per iteration — `/1` is the baseline the issuance redesign
/// replaces (256 `on_segment` calls through [`ScalarBackend`], one
/// challenge HMAC each), `/256` is one `on_segments` call on this
/// machine's best backend (pre-images and ISN mints staged through the
/// midstate-seeded batch interface) — so `ns(/1) / ns(/256)` *is* the
/// batch-issuance speedup over the scalar per-SYN path, which the CI
/// issuance-regression guard asserts stays ≥ 3× via
/// `bench_check --require-scaling stack/syn_challenge_batch:256:3.0`.
fn bench_syn_challenge_batch(c: &mut Criterion) {
    let pc = PuzzleConfig {
        algo: AlgoId::Prefix,
        difficulty: Difficulty::new(2, 17).expect("valid"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Real,
        hold: SimDuration::from_secs(3600),
        verify_workers: 1,
    };
    let backend = puzzle_crypto::auto_backend();
    println!(
        "stack: syn_challenge_batch/256 runs the `{}` engine",
        puzzle_crypto::HashBackend::name(&backend)
    );
    let batch = challenged_batch();
    let mut cfg = ListenerConfig::new(SERVER, 80);
    cfg.backlog = 0; // permanent pressure: every SYN is challenged
    c.bench_function("stack/syn_challenge_batch/1", |b| {
        let mut l = Listener::with_policy(
            cfg.clone(),
            ServerSecret::from_bytes([7; 32]),
            puzzle_crypto::ScalarBackend,
            &PolicyBuilder::puzzles(pc.clone()),
        );
        b.iter(|| {
            for (src, seg) in &batch {
                black_box(l.on_segment(SimTime::ZERO, *src, seg));
            }
        })
    });
    c.bench_function("stack/syn_challenge_batch/256", |b| {
        let mut l = Listener::with_policy(
            cfg.clone(),
            ServerSecret::from_bytes([7; 32]),
            backend,
            &PolicyBuilder::puzzles(pc.clone()),
        );
        b.iter(|| l.on_segments(SimTime::ZERO, black_box(&batch)))
    });
}

/// The same 256-SYN batched-vs-scalar comparison through the
/// near-stateless windowed policy: every pre-image is one SHA-256
/// compression over the per-window PRF nonce and the tuple (the nonce
/// HMAC itself amortizes to nothing across the batch), so the windowed
/// batch path must stay in the same class as classic batched issuance —
/// `ns(/1) / ns(/256)` is the windowed batch speedup.
fn bench_syn_challenge_stateless_batch(c: &mut Criterion) {
    let pc = PuzzleConfig {
        algo: AlgoId::Prefix,
        difficulty: Difficulty::new(2, 17).expect("valid"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Real,
        hold: SimDuration::from_secs(3600),
        verify_workers: 1,
    };
    let backend = puzzle_crypto::auto_backend();
    let batch = challenged_batch();
    let mut cfg = ListenerConfig::new(SERVER, 80);
    cfg.backlog = 0; // permanent pressure: every SYN is challenged
    c.bench_function("stack/syn_challenge_stateless_batch/1", |b| {
        let mut l = Listener::with_policy(
            cfg.clone(),
            ServerSecret::from_bytes([7; 32]),
            puzzle_crypto::ScalarBackend,
            &PolicyBuilder::stateless_puzzles(pc.clone(), 8),
        );
        b.iter(|| {
            for (src, seg) in &batch {
                black_box(l.on_segment(SimTime::ZERO, *src, seg));
            }
        })
    });
    c.bench_function("stack/syn_challenge_stateless_batch/256", |b| {
        let mut l = Listener::with_policy(
            cfg.clone(),
            ServerSecret::from_bytes([7; 32]),
            backend,
            &PolicyBuilder::stateless_puzzles(pc.clone(), 8),
        );
        b.iter(|| l.on_segments(SimTime::ZERO, black_box(&batch)))
    });
}

/// The conn-flood-shaped shard workload: 256 SYNs from 256 distinct
/// flows against latched puzzles, so every segment costs a challenge
/// HMAC — the admission-path workload the paper's cost model assumes
/// all cores share.
fn challenged_batch() -> Vec<(std::net::Ipv4Addr, TcpSegment)> {
    (0..256)
        .map(|i: u32| {
            let addr = Ipv4Addr::new(10, 1, (i / 200) as u8, 2 + (i % 200) as u8);
            let seg = SegmentBuilder::new(1024 + i as u16, 80)
                .seq(i)
                .flags(TcpFlags::SYN)
                .mss(1460)
                .timestamps(1, 0)
                .build();
            (addr, seg)
        })
        .collect()
}

fn sharded_listener(
    shards: usize,
    pipeline: tcpstack::ShardPipeline,
) -> ShardedListener<puzzle_crypto::ScalarBackend> {
    let pc = PuzzleConfig {
        algo: AlgoId::Prefix,
        difficulty: Difficulty::new(2, 17).expect("valid"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Real,
        hold: SimDuration::from_secs(3600),
        verify_workers: 1,
    };
    let mut cfg = ListenerConfig::new(SERVER, 80);
    cfg.backlog = 0; // permanent pressure: every SYN is challenged
    ShardedListener::with_policy_pipeline(
        cfg,
        ServerSecret::from_bytes([7; 32]),
        puzzle_crypto::ScalarBackend,
        &PolicyBuilder::puzzles(pc),
        shards,
        pipeline,
    )
}

/// Batch stepping through the RSS-style sharded listener with the step
/// pipeline forced **in-line**: shards run serially on the bench
/// thread, so `sharded/on_segments/N` measures pure dispatch + merge
/// overhead over the single-shard cost — the honest single-core
/// baseline every capture of this suite records (including
/// `BENCH_verify.json`, captured on a 1-core container). These ids
/// predate the persistent pipeline and keep their meaning: in-line
/// semantics were this group's behaviour on single-core hosts all
/// along.
fn bench_sharded_step(c: &mut Criterion) {
    let batch = challenged_batch();
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(format!("sharded/on_segments/{shards}"), |b| {
            let mut l = sharded_listener(shards, tcpstack::ShardPipeline::Inline);
            b.iter(|| l.on_segments(SimTime::ZERO, black_box(&batch)))
        });
    }
}

/// The same workload through the **persistent worker pipeline**: one
/// long-lived worker per shard fed over SPSC rings, zero thread spawns
/// per step. On a multi-core host `sharded_persistent/on_segments/4`
/// should beat `sharded_persistent/on_segments/1` (the multicore CI leg
/// asserts ≥ 1.5× via `bench_check --require-scaling`); on a
/// single-core host the group degrades to handoff overhead — real
/// scaling numbers only come from real cores, which is why the committed
/// baseline keeps the in-line group above as its reference. Note
/// `shards = 1` never spawns workers (the facade is transparent), so
/// the `/1` id measures the same in-line step as `sharded/on_segments/1`
/// and doubles as the scaling denominator.
fn bench_sharded_persistent_step(c: &mut Criterion) {
    let batch = challenged_batch();
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(format!("sharded_persistent/on_segments/{shards}"), |b| {
            let mut l = sharded_listener(shards, tcpstack::ShardPipeline::Persistent);
            b.iter(|| l.on_segments(SimTime::ZERO, black_box(&batch)))
        });
    }
}

/// Steady-state event-queue churn at `pending` in-flight events: each
/// iteration pops the earliest event and schedules a replacement — the
/// engine's inner loop. The wheel should stay flat as `pending` grows
/// (O(1)); the heap reference pays `log n` per operation.
fn bench_event_queue(c: &mut Criterion) {
    const PENDING: usize = 100_000;
    // Deterministic pseudo-random deltas spanning wheel levels.
    fn delta(i: u64) -> u64 {
        1 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 44)
    }

    c.bench_function("eventq/wheel/churn_100k", |b| {
        let mut q: TimerWheel<u64> = TimerWheel::new();
        let mut seq = 0u64;
        for i in 0..PENDING as u64 {
            q.schedule(SimTime::from_nanos(delta(i)), seq, i);
            seq += 1;
        }
        b.iter(|| {
            let ev = q.pop().expect("queue never drains");
            q.schedule(ev.at + SimDuration::from_nanos(delta(ev.seq)), seq, ev.item);
            seq += 1;
            black_box(ev.at)
        })
    });

    c.bench_function("eventq/heap/churn_100k", |b| {
        let mut q: HeapQueue<u64> = HeapQueue::new();
        let mut seq = 0u64;
        for i in 0..PENDING as u64 {
            q.schedule(SimTime::from_nanos(delta(i)), seq, i);
            seq += 1;
        }
        b.iter(|| {
            let ev = q.pop().expect("queue never drains");
            q.schedule(ev.at + SimDuration::from_nanos(delta(ev.seq)), seq, ev.item);
            seq += 1;
            black_box(ev.at)
        })
    });

    c.bench_function("eventq/wheel/schedule_pop_4k", |b| {
        b.iter(|| {
            let mut q: TimerWheel<u64> = TimerWheel::new();
            for i in 0..4096u64 {
                q.schedule(SimTime::from_nanos(delta(i)), i, i);
            }
            let mut last = 0;
            while let Some(ev) = q.pop() {
                last = ev.at.as_nanos();
            }
            black_box(last)
        })
    });
}

/// One simulated 100 ms step of a 100k-flow connection-flood scenario
/// (mid-attack): the fleet-scale acceptance workload as a benchmark.
fn bench_fleet_step(c: &mut Criterion) {
    let timeline = Timeline {
        total: 3600.0,
        attack_start: 1.0,
        attack_stop: 3600.0,
    };
    let matrix = Matrix::new(timeline)
        .defenses(vec![DefenseSpec::nash()])
        .attacks(vec![FleetAttack::ConnFlood {
            rate: 50_000.0,
            solve: None,
            conn_timeout: SimDuration::from_secs(1),
            ack_delay: SimDuration::from_millis(500),
        }])
        .fleet_sizes(vec![100_000])
        .seeds(vec![1]);
    let mut tb = matrix
        .cell_scenario(&matrix.defenses[0], &matrix.attacks[0], 100_000, 1)
        .build();
    // Warm into the attack's steady state.
    tb.run_until_secs(3.0);
    let mut now = 3.0;
    c.bench_function("fleet/conn_flood_100k/step_100ms", |b| {
        b.iter(|| {
            now += 0.1;
            tb.run_until_secs(now);
            black_box(tb.sim.stats().events_processed)
        })
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_syn_stateful, bench_syn_cookie, bench_syn_challenge, bench_syn_challenge_batch, bench_syn_challenge_stateless_batch, bench_sharded_step, bench_sharded_persistent_step, bench_event_queue, bench_fleet_step}
criterion_main!(benches);
