//! Micro-benchmarks: listener fast paths — what bounds the server's
//! packets-per-second under each defence.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::{SimDuration, SimTime};
use puzzle_core::{Difficulty, ServerSecret};
use std::hint::black_box;
use std::net::Ipv4Addr;
use tcpstack::{
    DefenseMode, Listener, ListenerConfig, PuzzleConfig, SegmentBuilder, TcpFlags, VerifyMode,
};

const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn listener(defense: DefenseMode, backlog: usize) -> Listener {
    let mut cfg = ListenerConfig::new(SERVER, 80);
    cfg.backlog = backlog;
    cfg.defense = defense;
    Listener::new(cfg, ServerSecret::from_bytes([7; 32]))
}

fn syn(port: u16) -> tcpstack::TcpSegment {
    SegmentBuilder::new(port, 80)
        .seq(1)
        .flags(TcpFlags::SYN)
        .mss(1460)
        .timestamps(1, 0)
        .build()
}

/// Stateful SYN handling (half-open creation + SYN-ACK).
fn bench_syn_stateful(c: &mut Criterion) {
    c.bench_function("stack/syn_stateful", |b| {
        let mut l = listener(DefenseMode::None, usize::MAX);
        let mut port = 1000u16;
        let src = Ipv4Addr::new(10, 0, 0, 2);
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            l.on_segment(SimTime::ZERO, src, black_box(&syn(port)))
        })
    });
}

/// Stateless cookie SYN-ACK generation under overflow.
fn bench_syn_cookie(c: &mut Criterion) {
    c.bench_function("stack/syn_cookie", |b| {
        let mut l = listener(DefenseMode::SynCookies, 0);
        let src = Ipv4Addr::new(10, 0, 0, 3);
        let seg = syn(2000);
        b.iter(|| l.on_segment(SimTime::ZERO, src, black_box(&seg)))
    });
}

/// Stateless challenge generation under overflow (g(p) = 1 hash).
fn bench_syn_challenge(c: &mut Criterion) {
    let pc = PuzzleConfig {
        difficulty: Difficulty::new(2, 17).expect("valid"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Real,
        hold: SimDuration::ZERO,
        verify_workers: 1,
    };
    c.bench_function("stack/syn_challenge", |b| {
        let mut l = listener(DefenseMode::Puzzles(pc.clone()), 0);
        let src = Ipv4Addr::new(10, 0, 0, 4);
        let seg = syn(3000);
        b.iter(|| l.on_segment(SimTime::ZERO, src, black_box(&seg)))
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_syn_stateful, bench_syn_cookie, bench_syn_challenge}
criterion_main!(benches);
