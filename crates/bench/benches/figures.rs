//! Per-figure/table regeneration benches: one Criterion benchmark per
//! evaluation artifact, each running a miniature (20 s) version of the
//! corresponding experiment. `cargo bench figures` therefore both times
//! the harness and exercises every experiment end to end. The printed
//! tables come from the `experiments` binaries (`cargo run -p
//! experiments --bin figXX_* [--full]`).

use bench::bench_timeline;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::Timeline;
use experiments::{
    fig03, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, fig15, nash,
    solution_flood, table1,
};

fn group(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function(name, |b| b.iter(&mut f));
    g.finish();
}

fn bench_fig03(c: &mut Criterion) {
    group(c, "fig03_stress_point", || {
        let rows = fig03::stress_test(1, &[200], 5.0);
        assert!(rows[0].service_rate > 0.0);
    });
}

fn bench_fig06(c: &mut Criterion) {
    group(c, "fig06_cdf_cell", || {
        let row = fig06::measure(2, 2, 10, fig06::KERNEL_HASH_RATE, 15.0, 4.0);
        assert!(!row.cdf.is_empty());
    });
}

fn bench_fig07(c: &mut Criterion) {
    group(c, "fig07_syn_flood", || {
        let r = fig07::run_with(3, bench_timeline(), 3, 1000.0);
        assert_eq!(r.outcomes.len(), 4);
    });
}

fn bench_fig08(c: &mut Criterion) {
    group(c, "fig08_conn_flood", || {
        let r = fig08::run_with(4, bench_timeline(), 3, 500.0);
        assert_eq!(r.outcomes.len(), 3);
    });
}

fn bench_fig09(c: &mut Criterion) {
    group(c, "fig09_cpu", || {
        let r = fig09::run_with(5, bench_timeline(), 3, 500.0);
        assert!(r.attackers.mean >= 0.0);
    });
}

fn bench_fig10(c: &mut Criterion) {
    group(c, "fig10_queues", || {
        let r = fig10::run_with(6, bench_timeline(), 3, 500.0);
        assert_eq!(r.traces.len(), 2);
    });
}

fn bench_fig11(c: &mut Criterion) {
    group(c, "fig11_attack_rate", || {
        let r = fig11::run_with(7, bench_timeline(), 3, 500.0);
        assert_eq!(r.rows.len(), 2);
    });
}

fn bench_fig12(c: &mut Criterion) {
    group(c, "fig12_difficulty_cell", || {
        let cell = fig12::measure(8, 2, 17, &bench_timeline(), 3, 500.0);
        assert_eq!((cell.k, cell.m), (2, 17));
    });
}

fn bench_fig13(c: &mut Criterion) {
    group(c, "fig13_rate_point", || {
        let p = fig13::measure(9, 3, 500.0, &bench_timeline());
        assert!(p.measured_pps > 0.0);
    });
}

fn bench_fig14(c: &mut Criterion) {
    group(c, "fig14_size_point", || {
        let p = fig14::measure(10, 4, 2000.0, &bench_timeline());
        assert_eq!(p.bots, 4);
    });
}

fn bench_fig15(c: &mut Criterion) {
    group(c, "fig15_adoption_cell", || {
        let row = fig15::measure(11, true, true, &bench_timeline(), 3, 500.0);
        assert_eq!(row.label, "(SA, SC)");
    });
}

fn bench_table1(c: &mut Criterion) {
    group(c, "table1_iot", || {
        let rows = table1::rows(puzzle_core::Difficulty::new(2, 17).expect("valid"));
        assert_eq!(rows.len(), 4);
    });
}

fn bench_solution_flood(c: &mut Criterion) {
    group(c, "solution_flood_point", || {
        let timeline = Timeline {
            total: 15.0,
            attack_start: 2.0,
            attack_stop: 13.0,
        };
        let p = solution_flood::measure(12, 2000.0, &timeline);
        assert_eq!(p.admitted, 0);
    });
}

fn bench_nash(c: &mut Criterion) {
    group(c, "nash_example", || {
        let r = nash::derive(140_630.0, 1100.0, 1.1, 10_000);
        assert_eq!((r.difficulty.k(), r.difficulty.m()), (2, 17));
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_fig03, bench_fig06, bench_fig07, bench_fig08, bench_fig09, bench_fig10, bench_fig11, bench_fig12, bench_fig13, bench_fig14, bench_fig15, bench_table1, bench_solution_flood, bench_nash}
criterion_main!(benches);
