//! Macro-benchmarks: simulator throughput — events/second for the
//! testbed under load, which bounds every experiment's wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::{DefenseSpec, Scenario, Timeline};

/// Ten simulated seconds of the standard quiet scenario (15 clients).
fn bench_quiet_testbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("quiet_10s_15clients", |b| {
        b.iter(|| {
            let timeline = Timeline::smoke();
            let scenario = Scenario::standard(5, DefenseSpec::none(), &timeline);
            let mut tb = scenario.build();
            tb.run_until_secs(10.0);
            tb.sim.stats().events_processed
        })
    });
    g.finish();
}

/// Ten simulated seconds under a 10-bot connection flood with puzzles.
fn bench_flooded_testbed(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("flood_10s_10bots_nash", |b| {
        b.iter(|| {
            let timeline = Timeline {
                total: 10.0,
                attack_start: 1.0,
                attack_stop: 10.0,
            };
            let mut scenario = Scenario::standard(5, DefenseSpec::nash(), &timeline);
            scenario.attackers = Scenario::conn_flood_bots(10, 500.0, false, &timeline);
            let mut tb = scenario.build();
            tb.run_until_secs(10.0);
            tb.sim.stats().events_processed
        })
    });
    g.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_quiet_testbed, bench_flooded_testbed}
criterion_main!(benches);
