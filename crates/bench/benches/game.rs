//! Micro-benchmarks: the Stackelberg solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use puzzle_game::{
    best_response_dynamics, nash_rates, optimal_difficulty, select_parameters, GameConfig,
    SelectionPolicy,
};
use std::hint::black_box;

fn bench_nash_rates(c: &mut Criterion) {
    let cfg = GameConfig::homogeneous(1_000, 140_630.0, 1.1 * 1_000.0).expect("valid");
    c.bench_function("game/nash_rates(N=1000)", |b| {
        b.iter(|| nash_rates(black_box(&cfg), 66_000.0).expect("feasible"))
    });
}

fn bench_optimal_difficulty(c: &mut Criterion) {
    let cfg = GameConfig::homogeneous(10_000, 140_630.0, 1.1 * 10_000.0).expect("valid");
    c.bench_function("game/optimal_difficulty(N=10000)", |b| {
        b.iter(|| optimal_difficulty(black_box(&cfg)).expect("feasible"))
    });
}

fn bench_best_response(c: &mut Criterion) {
    let cfg = GameConfig::homogeneous(50, 1_000.0, 100.0).expect("valid");
    c.bench_function("game/best_response_dynamics(N=50)", |b| {
        b.iter(|| best_response_dynamics(black_box(&cfg), 100.0, 1e-6, 100_000).expect("converges"))
    });
}

fn bench_select(c: &mut Criterion) {
    c.bench_function("game/select_parameters", |b| {
        b.iter(|| {
            select_parameters(
                black_box(66_966.7),
                SelectionPolicy::MinimizeOvershoot { k_max: 4 },
            )
            .expect("valid")
        })
    });
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2)).sample_size(10); targets = bench_nash_rates, bench_optimal_difficulty, bench_best_response, bench_select}
criterion_main!(benches);
