//! Shared helpers for the tcp-puzzles benchmark suite.

#![forbid(unsafe_code)]

use experiments::scenario::Timeline;

/// A miniature timeline for per-figure regeneration benches: long enough
/// for the defence dynamics to engage, short enough for Criterion.
pub fn bench_timeline() -> Timeline {
    Timeline {
        total: 20.0,
        attack_start: 4.0,
        attack_stop: 16.0,
    }
}
