//! A benign client: Poisson request arrivals over the puzzle-aware stack.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::cpu::Cpu;
use crate::solve::SolveStrategy;
use netsim::{Context, IfaceId, Packet, SimDuration, SimTime, TimerId};
use puzzle_core::ConnectionTuple;
use simmetrics::{IntervalSeries, SampleSeries};
use tcpstack::{ClientConfig, ClientConn, ClientEvent, TcpSegment};

const K_NEWREQ: u64 = 1;
const K_RETX: u64 = 2;
const K_SOLVE: u64 = 3;
const K_TIMEOUT: u64 = 4;
const K_TICK: u64 = 5;

const fn tag(kind: u64, payload: u64) -> u64 {
    (kind << 56) | payload
}

/// Whether this host cooperates with the puzzle protocol.
#[derive(Clone, Debug)]
pub enum SolveBehavior {
    /// Solve challenges with the given strategy (the paper's "SC" —
    /// solving client).
    Solve(SolveStrategy),
    /// Acknowledge without solving — a host without the kernel patch
    /// (the paper's "NC" in Experiment 5).
    Ignore,
}

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientParams {
    /// Our address.
    pub addr: Ipv4Addr,
    /// Server address.
    pub server_addr: Ipv4Addr,
    /// Server port.
    pub server_port: u16,
    /// Mean request rate `r_c` (requests/second, exponential
    /// inter-arrivals; the paper uses 20).
    pub request_rate: f64,
    /// Bytes requested per connection (the paper uses 10,000).
    pub request_size: usize,
    /// Cooperation behaviour.
    pub behavior: SolveBehavior,
    /// SHA-256 throughput of this device, per core.
    pub hash_rate: f64,
    /// Solver cores. The paper's clients are quad-core workstations whose
    /// kernel patch solves per-connection — concurrent handshakes solve in
    /// parallel. (Attack tools drive a single solver thread; see
    /// `AttackerParams`.)
    pub cores: usize,
    /// Give-up deadline per request.
    pub request_timeout: SimDuration,
    /// `Some(c)` turns the client into an `ab`-style closed-loop load
    /// generator: it keeps exactly `c` requests in flight, starting a new
    /// one the moment one finishes (used by the Fig. 3b stress test).
    /// `None` (the default) is the paper's open-loop Poisson client.
    pub closed_loop: Option<usize>,
}

impl ClientParams {
    /// The paper's default client: 20 req/s of 10 kB, solving with the
    /// given strategy, on the given device profile.
    pub fn new(
        addr: Ipv4Addr,
        server_addr: Ipv4Addr,
        behavior: SolveBehavior,
        hash_rate: f64,
    ) -> Self {
        ClientParams {
            addr,
            server_addr,
            server_port: 80,
            request_rate: 20.0,
            request_size: 10_000,
            behavior,
            hash_rate,
            cores: 4,
            request_timeout: SimDuration::from_secs(10),
            closed_loop: None,
        }
    }
}

/// Per-request outcome record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestOutcome {
    /// When the request started (seconds).
    pub started: f64,
    /// Handshake latency in seconds, if the connection established.
    pub connect_secs: Option<f64>,
    /// Whether the full response arrived.
    pub completed: bool,
}

/// Everything the figures measure at a client.
#[derive(Clone, Debug)]
pub struct ClientMetrics {
    /// Application bytes received per 1 s bin (Figs. 7, 8, 12).
    pub bytes_rx: IntervalSeries,
    /// Requests started per 1 s bin.
    pub attempts: IntervalSeries,
    /// Requests completed per 1 s bin (Fig. 15's numerator).
    pub completions: IntervalSeries,
    /// Per-request records (Fig. 6 uses `connect_secs`).
    pub requests: Vec<RequestOutcome>,
    /// CPU utilization samples (Fig. 9).
    pub cpu_util: SampleSeries,
    /// Counters.
    pub started: u64,
    /// Connections that (locally) established.
    pub established: u64,
    /// Requests whose full response arrived.
    pub completed: u64,
    /// Requests that failed (reset, timeout, or gave up).
    pub failed: u64,
    /// Challenges solved.
    pub solves: u64,
}

impl ClientMetrics {
    fn new() -> Self {
        ClientMetrics {
            bytes_rx: IntervalSeries::new(1.0),
            attempts: IntervalSeries::new(1.0),
            completions: IntervalSeries::new(1.0),
            requests: Vec::new(),
            cpu_util: SampleSeries::new(),
            started: 0,
            established: 0,
            completed: 0,
            failed: 0,
            solves: 0,
        }
    }

    /// Connection times in seconds for established connections.
    pub fn connection_times(&self) -> Vec<f64> {
        self.requests
            .iter()
            .filter_map(|r| r.connect_secs)
            .collect()
    }
}

struct ConnEntry {
    conn: ClientConn,
    /// Index into `metrics.requests`.
    record: usize,
    timeout_timer: TimerId,
    pending_proofs: Option<Vec<Vec<u8>>>,
}

/// The benign client behaviour.
#[derive(Debug)]
pub struct ClientHost {
    params: ClientParams,
    cpu: Cpu,
    metrics: ClientMetrics,
    conns: HashMap<u16, ConnEntry>,
    next_port: u16,
}

impl std::fmt::Debug for ConnEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ConnEntry(record={})", self.record)
    }
}

impl ClientHost {
    /// Builds a client from its parameters.
    pub fn new(params: ClientParams) -> Self {
        ClientHost {
            cpu: Cpu::with_cores(params.hash_rate, params.cores),
            metrics: ClientMetrics::new(),
            conns: HashMap::new(),
            next_port: 10_000,
            params,
        }
    }

    /// The client's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.params.addr
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 60_000 {
            10_000
        } else {
            self.next_port + 1
        };
        p
    }

    fn send_seg(&self, ctx: &mut Context<'_, TcpSegment>, seg: TcpSegment) {
        ctx.send(
            IfaceId(0),
            Packet::new(self.params.addr, self.params.server_addr, seg),
        );
    }

    fn start_request(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let now = ctx.now();
        let port = self.alloc_port();
        let isn = ctx.rng().next_u32();
        let cfg = ClientConfig::new(
            self.params.addr,
            port,
            self.params.server_addr,
            self.params.server_port,
        );
        let (conn, syn) = ClientConn::connect(cfg, isn, now);
        let record = self.metrics.requests.len();
        self.metrics.requests.push(RequestOutcome {
            started: now.as_secs_f64(),
            connect_secs: None,
            completed: false,
        });
        self.metrics.started += 1;
        self.metrics.attempts.incr(now.as_secs_f64());
        let timeout_timer = ctx.set_timer(self.params.request_timeout, tag(K_TIMEOUT, port as u64));
        if let Some(deadline) = conn.next_deadline() {
            ctx.set_timer(deadline.since(now), tag(K_RETX, port as u64));
        }
        self.conns.insert(
            port,
            ConnEntry {
                conn,
                record,
                timeout_timer,
                pending_proofs: None,
            },
        );
        self.send_seg(ctx, syn);
    }

    fn note_established(&mut self, port: u16, now: SimTime) {
        if let Some(entry) = self.conns.get(&port) {
            self.metrics.established += 1;
            if let Some(d) = entry.conn.connection_time() {
                self.metrics.requests[entry.record].connect_secs = Some(d.as_secs_f64());
            }
            let _ = now;
        }
    }

    fn send_request_payload(&mut self, ctx: &mut Context<'_, TcpSegment>, port: u16) {
        let size = self.params.request_size;
        if let Some(entry) = self.conns.get_mut(&port) {
            let payload = format!("GET /gettext/{size}").into_bytes();
            let seg = entry.conn.send(payload);
            self.send_seg(ctx, seg);
        }
    }

    fn finish(&mut self, ctx: &mut Context<'_, TcpSegment>, port: u16, completed: bool) {
        if let Some(entry) = self.conns.remove(&port) {
            ctx.cancel_timer(entry.timeout_timer);
            if completed {
                self.metrics.completed += 1;
                self.metrics.completions.incr(ctx.now().as_secs_f64());
                self.metrics.requests[entry.record].completed = true;
            } else {
                self.metrics.failed += 1;
            }
            // Closed-loop generator: immediately replace the finished
            // request to hold the concurrency level.
            if self.params.closed_loop.is_some() {
                self.start_request(ctx);
            }
        }
    }

    fn handle_events(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        port: u16,
        events: Vec<ClientEvent>,
    ) {
        let now = ctx.now();
        for ev in events {
            match ev {
                ClientEvent::Established => {
                    self.note_established(port, now);
                    self.send_request_payload(ctx, port);
                }
                ClientEvent::Challenged {
                    challenge,
                    issued_at,
                } => {
                    match self.params.behavior.clone() {
                        SolveBehavior::Solve(strategy) => {
                            // Don't queue a solve that would finish after
                            // the request's give-up deadline — the user
                            // (or the kernel's solver thread) abandons
                            // stale work instead of head-of-line blocking
                            // every later request. This is the client-side
                            // face of the CPU rate limit the puzzles are
                            // designed to impose (§6.2: ~2 requests/s).
                            if self.cpu.busy_until() > now + self.params.request_timeout / 2 {
                                self.finish(ctx, port, false);
                                continue;
                            }
                            let tuple = ConnectionTuple::new(
                                self.params.addr,
                                port,
                                self.params.server_addr,
                                self.params.server_port,
                                0, // informational; the oracle binds via the pre-image
                            );
                            let solved = strategy.solve(&tuple, &challenge, issued_at, ctx.rng());
                            let done = self.cpu.schedule_hashes(now, solved.hashes as f64);
                            if let Some(entry) = self.conns.get_mut(&port) {
                                entry.pending_proofs = Some(solved.proofs);
                            }
                            self.metrics.solves += 1;
                            ctx.set_timer(done.since(now), tag(K_SOLVE, port as u64));
                        }
                        SolveBehavior::Ignore => {
                            // Unpatched host: plain ACK, then the request.
                            if let Some(entry) = self.conns.get_mut(&port) {
                                let ack = entry.conn.acknowledge_plain(now);
                                self.send_seg(ctx, ack);
                            }
                            self.note_established(port, now);
                            self.send_request_payload(ctx, port);
                        }
                    }
                }
                ClientEvent::Data { len, fin } => {
                    self.metrics.bytes_rx.add(now.as_secs_f64(), len as f64);
                    if fin {
                        self.finish(ctx, port, true);
                    }
                }
                ClientEvent::Reset | ClientEvent::TimedOut => {
                    self.finish(ctx, port, false);
                }
            }
        }
    }
}

impl netsim::Node<TcpSegment> for ClientHost {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        match self.params.closed_loop {
            Some(concurrency) => {
                for _ in 0..concurrency {
                    self.start_request(ctx);
                }
            }
            None => {
                let first = SimDuration::from_secs_f64(ctx.rng().exp_f64(self.params.request_rate));
                ctx.set_timer(first, tag(K_NEWREQ, 0));
            }
        }
        ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        _iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        let port = pkt.payload.dst_port;
        let Some(entry) = self.conns.get_mut(&port) else {
            return;
        };
        let (reply, events) = entry.conn.on_segment(ctx.now(), &pkt.payload);
        if let Some(seg) = reply {
            self.send_seg(ctx, seg);
        }
        self.handle_events(ctx, port, events);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, _id: TimerId, t: u64) {
        let now = ctx.now();
        let port = (t & 0xffff) as u16;
        match t >> 56 {
            K_NEWREQ => {
                self.start_request(ctx);
                let next = SimDuration::from_secs_f64(ctx.rng().exp_f64(self.params.request_rate));
                ctx.set_timer(next, tag(K_NEWREQ, 0));
            }
            K_RETX => {
                let Some(entry) = self.conns.get_mut(&port) else {
                    return;
                };
                let (retx, events) = entry.conn.poll(now);
                if let Some(seg) = retx {
                    self.send_seg(ctx, seg);
                }
                if let Some(entry) = self.conns.get(&port) {
                    if let Some(deadline) = entry.conn.next_deadline() {
                        ctx.set_timer(deadline.since(now), tag(K_RETX, port as u64));
                    }
                }
                self.handle_events(ctx, port, events);
            }
            K_SOLVE => {
                if let Some(entry) = self.conns.get_mut(&port) {
                    if let Some(proofs) = entry.pending_proofs.take() {
                        let ack = entry.conn.provide_solution(now, &proofs);
                        self.send_seg(ctx, ack);
                        self.note_established(port, now);
                        self.send_request_payload(ctx, port);
                    }
                }
            }
            K_TIMEOUT
                // Give up on the request if it is still pending.
                if self.conns.contains_key(&port) => {
                    self.finish(ctx, port, false);
                }
            K_TICK => {
                let secs = now.as_secs_f64();
                if now.as_nanos() >= 1_000_000_000 {
                    let from = now.saturating_sub(SimDuration::from_secs(1));
                    self.metrics
                        .cpu_util
                        .push(secs, self.cpu.utilization(from, now));
                    self.cpu
                        .prune_before(now.saturating_sub(SimDuration::from_secs(2)));
                }
                ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
            }
            _ => {}
        }
    }
}
