//! Serial CPU model with busy-interval accounting.

use std::collections::VecDeque;

use netsim::{SimDuration, SimTime};

/// A CPU with one or more cores that perform hash work.
///
/// Each job runs on the earliest-available core; with one core, jobs are
/// strictly serial — this is what rate-limits solving hosts (a bot
/// mid-solve cannot complete the next connection's solve), the key
/// mechanism behind the paper's attacker throttling (§6.2–6.4). Clients
/// whose kernel solves per-connection parallelize across their cores.
///
/// Busy intervals are retained (and prunable) so experiments can sample
/// utilization over sliding windows (Fig. 9).
#[derive(Clone, Debug)]
pub struct Cpu {
    hash_rate: f64,
    cores: Vec<SimTime>,
    intervals: VecDeque<(SimTime, SimTime)>,
    total_busy: SimDuration,
}

impl Cpu {
    /// Creates a single-core CPU with the given per-core SHA-256
    /// throughput (hashes/second).
    ///
    /// # Panics
    ///
    /// Panics unless `hash_rate > 0`.
    pub fn new(hash_rate: f64) -> Self {
        Cpu::with_cores(hash_rate, 1)
    }

    /// Creates a CPU with `cores` cores, each hashing at `hash_rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `hash_rate > 0` and `cores >= 1`.
    pub fn with_cores(hash_rate: f64, cores: usize) -> Self {
        assert!(hash_rate > 0.0, "hash rate must be positive");
        assert!(cores >= 1, "need at least one core");
        Cpu {
            hash_rate,
            cores: vec![SimTime::ZERO; cores],
            intervals: VecDeque::new(),
            total_busy: SimDuration::ZERO,
        }
    }

    /// The modelled per-core hash throughput.
    pub fn hash_rate(&self) -> f64 {
        self.hash_rate
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Schedules `hashes` of work on the earliest-available core (no
    /// earlier than `now`). Returns the completion instant.
    pub fn schedule_hashes(&mut self, now: SimTime, hashes: f64) -> SimTime {
        let dur = SimDuration::from_secs_f64(hashes.max(0.0) / self.hash_rate);
        self.schedule_busy(now, dur)
    }

    /// Schedules a busy period of `dur` on the earliest-available core.
    pub fn schedule_busy(&mut self, now: SimTime, dur: SimDuration) -> SimTime {
        let core = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("at least one core");
        let start = self.cores[core].max(now);
        let end = start + dur;
        self.cores[core] = end;
        self.total_busy += dur;
        // Busy intervals are kept sorted by insertion; overlapping core
        // intervals are fine — utilization sums capped at `cores`.
        self.intervals.push_back((start, end));
        end
    }

    /// The earliest instant a core becomes idle (≤ `now` means a core is
    /// idle now). Used for solve-backlog gating.
    pub fn busy_until(&self) -> SimTime {
        self.cores.iter().copied().min().expect("at least one core")
    }

    /// Cumulative busy core-time ever scheduled.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Fraction of `[from, to)` the CPU spends busy, averaged over cores
    /// (includes scheduled future work that overlaps the window).
    ///
    /// # Panics
    ///
    /// Panics unless `from < to`.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty utilization window");
        let window = (to - from).as_secs_f64() * self.cores.len() as f64;
        let mut busy = 0.0;
        for &(s, e) in &self.intervals {
            let lo = s.max(from);
            let hi = e.min(to);
            if lo < hi {
                busy += (hi - lo).as_secs_f64();
            }
        }
        (busy / window).min(1.0)
    }

    /// Drops retained intervals that end before `t` (bounding memory; call
    /// with `now − window` after sampling).
    ///
    /// Intervals are inserted in start order per core but pruned from the
    /// global front; an out-of-order survivor is retained conservatively.
    pub fn prune_before(&mut self, t: SimTime) {
        while let Some(&(_, end)) = self.intervals.front() {
            if end < t {
                self.intervals.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn hashes_take_rate_proportional_time() {
        let mut cpu = Cpu::new(1000.0);
        let end = cpu.schedule_hashes(SimTime::ZERO, 500.0);
        assert_eq!(end, s(0.5));
    }

    #[test]
    fn jobs_serialize() {
        let mut cpu = Cpu::new(1000.0);
        let a = cpu.schedule_hashes(SimTime::ZERO, 1000.0);
        // Submitted while busy: queued behind.
        let b = cpu.schedule_hashes(s(0.2), 1000.0);
        assert_eq!(a, s(1.0));
        assert_eq!(b, s(2.0));
        assert_eq!(cpu.busy_until(), s(2.0));
        assert_eq!(cpu.total_busy(), SimDuration::from_secs(2));
    }

    #[test]
    fn idle_gap_starts_fresh() {
        let mut cpu = Cpu::new(1000.0);
        cpu.schedule_hashes(SimTime::ZERO, 500.0);
        let end = cpu.schedule_hashes(s(5.0), 500.0);
        assert_eq!(end, s(5.5));
    }

    #[test]
    fn utilization_windows() {
        let mut cpu = Cpu::new(1000.0);
        cpu.schedule_hashes(SimTime::ZERO, 500.0); // busy [0, 0.5)
        cpu.schedule_hashes(s(1.0), 250.0); // busy [1.0, 1.25)
        assert!((cpu.utilization(SimTime::ZERO, s(1.0)) - 0.5).abs() < 1e-12);
        assert!((cpu.utilization(s(1.0), s(2.0)) - 0.25).abs() < 1e-12);
        assert!((cpu.utilization(SimTime::ZERO, s(2.0)) - 0.375).abs() < 1e-12);
        assert_eq!(cpu.utilization(s(3.0), s(4.0)), 0.0);
    }

    #[test]
    fn contiguous_jobs_merge_intervals() {
        let mut cpu = Cpu::new(1000.0);
        cpu.schedule_hashes(SimTime::ZERO, 100.0);
        cpu.schedule_hashes(SimTime::ZERO, 100.0); // starts exactly at 0.1
        assert!((cpu.utilization(SimTime::ZERO, s(0.2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prune_keeps_overlapping() {
        let mut cpu = Cpu::new(1000.0);
        cpu.schedule_hashes(SimTime::ZERO, 500.0); // [0, .5)
        cpu.schedule_hashes(s(1.0), 500.0); // [1, 1.5)
        cpu.prune_before(s(0.9));
        assert_eq!(cpu.utilization(SimTime::ZERO, s(0.5)), 0.0); // pruned
        assert!((cpu.utilization(s(1.0), s(1.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        Cpu::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Cpu::with_cores(1000.0, 0);
    }

    #[test]
    fn multicore_runs_jobs_in_parallel() {
        let mut cpu = Cpu::with_cores(1000.0, 4);
        assert_eq!(cpu.cores(), 4);
        // Four 1 s jobs at t = 0 all finish at t = 1 (one per core).
        for _ in 0..4 {
            assert_eq!(cpu.schedule_hashes(SimTime::ZERO, 1000.0), s(1.0));
        }
        // The fifth queues behind the earliest core.
        assert_eq!(cpu.schedule_hashes(SimTime::ZERO, 1000.0), s(2.0));
        // busy_until reports the earliest-free core.
        assert_eq!(cpu.busy_until(), s(1.0));
        // Utilization averages across cores: 5 core-seconds over 4×2 s.
        assert!((cpu.utilization(SimTime::ZERO, s(2.0)) - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn multicore_throughput_quadruples() {
        // 8 jobs of 0.5 s: 1 core finishes at 4 s, 4 cores at 1 s.
        let mut single = Cpu::new(1000.0);
        let mut quad = Cpu::with_cores(1000.0, 4);
        let mut last_single = SimTime::ZERO;
        let mut last_quad = SimTime::ZERO;
        for _ in 0..8 {
            last_single = single.schedule_hashes(SimTime::ZERO, 500.0);
            last_quad = quad.schedule_hashes(SimTime::ZERO, 500.0);
        }
        assert_eq!(last_single, s(4.0));
        assert_eq!(last_quad, s(1.0));
    }
}
