//! How a simulated host produces puzzle solutions.

use netsim::rng::SimRng;
use puzzle_core::{
    sample_solve_hashes, Challenge, ChallengeParams, ConnectionTuple, Difficulty, ServerSecret,
    SolveCostModel, Solver,
};
use tcpstack::listener::oracle_proof;
use tcpstack::ChallengeOption;

/// Strategy for producing the proof bytes of a challenge.
#[derive(Clone, Debug)]
pub enum SolveStrategy {
    /// Run the real brute-force solver and charge the *actual* hash count
    /// to the CPU model. Exact, but only practical at small `m` (tests,
    /// examples).
    Real,
    /// Mint proofs with the simulation oracle (requires the scenario to
    /// share the server secret) and charge a *sampled* hash count to the
    /// CPU model. Used for paper-scale difficulties like `(2, 17)`.
    Oracle {
        /// The server's secret, shared by the scenario harness.
        secret: ServerSecret,
        /// Distribution of the modelled brute-force cost.
        cost_model: SolveCostModel,
    },
}

/// A produced solution: proof bytes plus the hash count charged for them.
#[derive(Clone, Debug)]
pub struct SolvedProofs {
    /// Sub-solution bytes, in index order.
    pub proofs: Vec<Vec<u8>>,
    /// Hash operations the solve is modelled (or measured) to have cost.
    pub hashes: u64,
}

impl SolveStrategy {
    /// Produces proofs for `challenge` as received on flow
    /// `(tuple, issued_at)`.
    ///
    /// # Panics
    ///
    /// Panics if the challenge parameters are malformed (`k = 0`,
    /// `m` out of range) — the listener never emits such challenges.
    pub fn solve(
        &self,
        tuple: &ConnectionTuple,
        challenge: &ChallengeOption,
        issued_at: u32,
        rng: &mut SimRng,
    ) -> SolvedProofs {
        let difficulty =
            Difficulty::new(challenge.k, challenge.m).expect("listener sent valid difficulty");
        match self {
            SolveStrategy::Real => {
                let params = ChallengeParams {
                    difficulty,
                    preimage_bits: challenge.l_bits(),
                    timestamp: issued_at,
                };
                let c = Challenge::from_wire(params, challenge.preimage.clone())
                    .expect("listener sent consistent challenge");
                let out = Solver::new().solve(&c);
                SolvedProofs {
                    proofs: out.solution.proofs().to_vec(),
                    hashes: out.hashes,
                }
            }
            SolveStrategy::Oracle { secret, cost_model } => {
                let _ = tuple; // the oracle proof binds via the pre-image
                let mut f = || rng.next_f64();
                let hashes = sample_solve_hashes(difficulty, *cost_model, &mut f);
                let len = challenge.preimage.len();
                let proofs = (1..=challenge.k)
                    .map(|i| oracle_proof(secret, &challenge.preimage, i, len))
                    .collect();
                SolvedProofs { proofs, hashes }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple() -> ConnectionTuple {
        ConnectionTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            77,
        )
    }

    #[test]
    fn real_strategy_solves_verifiably() {
        let secret = ServerSecret::from_bytes([9; 32]);
        let d = Difficulty::new(2, 5).unwrap();
        let c = Challenge::issue(&secret, &tuple(), 3, d, 32).unwrap();
        let copt = ChallengeOption {
            k: 2,
            m: 5,
            preimage: c.preimage().to_vec(),
            timestamp: None,
        };
        let mut rng = SimRng::seed_from(1);
        let solved = SolveStrategy::Real.solve(&tuple(), &copt, 3, &mut rng);
        assert_eq!(solved.proofs.len(), 2);
        assert!(solved.hashes >= 2);
        for (i, p) in solved.proofs.iter().enumerate() {
            assert!(c.sub_solution_ok(i as u8 + 1, p));
        }
    }

    #[test]
    fn oracle_strategy_matches_listener_oracle() {
        let secret = ServerSecret::from_bytes([4; 32]);
        let copt = ChallengeOption {
            k: 3,
            m: 17,
            preimage: vec![1, 2, 3, 4],
            timestamp: None,
        };
        let mut rng = SimRng::seed_from(2);
        let strategy = SolveStrategy::Oracle {
            secret: secret.clone(),
            cost_model: SolveCostModel::UniformPlacement,
        };
        let solved = strategy.solve(&tuple(), &copt, 5, &mut rng);
        assert_eq!(solved.proofs.len(), 3);
        for (i, p) in solved.proofs.iter().enumerate() {
            assert_eq!(p, &oracle_proof(&secret, &copt.preimage, i as u8 + 1, 4));
        }
        // Modelled cost is in the plausible range for (3, 17):
        // 3 sub-puzzles × [1, 2^17] each.
        assert!(solved.hashes >= 3);
        assert!(solved.hashes <= 3 * (1 << 17));
    }

    #[test]
    fn oracle_cost_sampling_varies() {
        let secret = ServerSecret::from_bytes([4; 32]);
        let copt = ChallengeOption {
            k: 1,
            m: 10,
            preimage: vec![1, 2, 3, 4],
            timestamp: None,
        };
        let strategy = SolveStrategy::Oracle {
            secret,
            cost_model: SolveCostModel::UniformPlacement,
        };
        let mut rng = SimRng::seed_from(3);
        let costs: Vec<u64> = (0..32)
            .map(|_| strategy.solve(&tuple(), &copt, 5, &mut rng).hashes)
            .collect();
        let distinct: std::collections::HashSet<_> = costs.iter().collect();
        assert!(distinct.len() > 5, "cost should vary across solves");
    }
}
