//! How a simulated host produces puzzle solutions.

use netsim::rng::SimRng;
use puzzle_core::{
    sample_solve_hashes_for, solve_fits_budget, Challenge, ChallengeParams, ConnectionTuple,
    Difficulty, ServerSecret, SolveCostModel, Solver,
};
use tcpstack::listener::oracle_proof_for;
use tcpstack::ChallengeOption;

/// Strategy for producing the proof bytes of a challenge.
#[derive(Clone, Debug)]
pub enum SolveStrategy {
    /// Run the real brute-force solver and charge the *actual* hash count
    /// to the CPU model. Exact, but only practical at small `m` (tests,
    /// examples).
    Real,
    /// Mint proofs with the simulation oracle (requires the scenario to
    /// share the server secret) and charge a *sampled* hash count to the
    /// CPU model. Used for paper-scale difficulties like `(2, 17)`.
    Oracle {
        /// The server's secret, shared by the scenario harness.
        secret: ServerSecret,
        /// Distribution of the modelled brute-force cost.
        cost_model: SolveCostModel,
    },
}

/// A produced solution: proof bytes plus the hash count charged for them.
#[derive(Clone, Debug)]
pub struct SolvedProofs {
    /// Sub-solution bytes, in index order.
    pub proofs: Vec<Vec<u8>>,
    /// Hash operations the solve is modelled (or measured) to have cost.
    pub hashes: u64,
}

impl SolveStrategy {
    /// Produces proofs for `challenge` as received on flow
    /// `(tuple, issued_at)`, under the algorithm the challenge poses.
    ///
    /// # Panics
    ///
    /// Panics if the challenge parameters are malformed (`k = 0`,
    /// `m` out of range) — the listener never emits such challenges.
    pub fn solve(
        &self,
        tuple: &ConnectionTuple,
        challenge: &ChallengeOption,
        issued_at: u32,
        rng: &mut SimRng,
    ) -> SolvedProofs {
        self.solve_with_budget(tuple, challenge, issued_at, rng, u64::MAX)
            .expect("unbounded solve cannot exhaust its budget")
    }

    /// [`SolveStrategy::solve`] under a hash budget; returns `None` when
    /// the solve does not fit.
    ///
    /// Both strategies apply the workspace's single budget rule,
    /// [`puzzle_core::solve_fits_budget`] — the budget is *inclusive* of
    /// the final successful hash — so the real solver and the oracle's
    /// sampled cost can never disagree about the boundary case: a real
    /// solve of exactly `H` hashes and an oracle solve sampled at `H`
    /// both fit a budget of `H` and both miss `H − 1`.
    pub fn solve_with_budget(
        &self,
        tuple: &ConnectionTuple,
        challenge: &ChallengeOption,
        issued_at: u32,
        rng: &mut SimRng,
        budget: u64,
    ) -> Option<SolvedProofs> {
        let difficulty =
            Difficulty::new(challenge.k, challenge.m).expect("listener sent valid difficulty");
        match self {
            SolveStrategy::Real => {
                let params = ChallengeParams {
                    difficulty,
                    preimage_bits: challenge.l_bits(),
                    timestamp: issued_at,
                };
                let c = Challenge::from_wire(params, challenge.preimage.clone())
                    .expect("listener sent consistent challenge");
                let out = Solver::new()
                    .with_algo(challenge.algo)
                    .solve_with_budget(&c, budget)?;
                Some(SolvedProofs {
                    proofs: out.solution.proofs().to_vec(),
                    hashes: out.hashes,
                })
            }
            SolveStrategy::Oracle { secret, cost_model } => {
                let _ = tuple; // the oracle proof binds via the pre-image
                let mut f = || rng.next_f64();
                let hashes =
                    sample_solve_hashes_for(challenge.algo, difficulty, *cost_model, &mut f);
                if !solve_fits_budget(hashes, budget) {
                    return None;
                }
                let len = challenge.preimage.len();
                let proofs = (1..=challenge.k)
                    .map(|i| oracle_proof_for(challenge.algo, secret, &challenge.preimage, i, len))
                    .collect();
                Some(SolvedProofs { proofs, hashes })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puzzle_core::AlgoId;
    use std::net::Ipv4Addr;
    use tcpstack::listener::oracle_proof;

    fn tuple() -> ConnectionTuple {
        ConnectionTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            77,
        )
    }

    #[test]
    fn real_strategy_solves_verifiably() {
        let secret = ServerSecret::from_bytes([9; 32]);
        let d = Difficulty::new(2, 5).unwrap();
        let c = Challenge::issue(&secret, &tuple(), 3, d, 32).unwrap();
        let copt = ChallengeOption {
            k: 2,
            m: 5,
            preimage: c.preimage().to_vec(),
            timestamp: None,
            algo: AlgoId::Prefix,
        };
        let mut rng = SimRng::seed_from(1);
        let solved = SolveStrategy::Real.solve(&tuple(), &copt, 3, &mut rng);
        assert_eq!(solved.proofs.len(), 2);
        assert!(solved.hashes >= 2);
        for (i, p) in solved.proofs.iter().enumerate() {
            assert!(c.sub_solution_ok(i as u8 + 1, p));
        }
    }

    #[test]
    fn oracle_strategy_matches_listener_oracle() {
        let secret = ServerSecret::from_bytes([4; 32]);
        let copt = ChallengeOption {
            k: 3,
            m: 17,
            preimage: vec![1, 2, 3, 4],
            timestamp: None,
            algo: AlgoId::Prefix,
        };
        let mut rng = SimRng::seed_from(2);
        let strategy = SolveStrategy::Oracle {
            secret: secret.clone(),
            cost_model: SolveCostModel::UniformPlacement,
        };
        let solved = strategy.solve(&tuple(), &copt, 5, &mut rng);
        assert_eq!(solved.proofs.len(), 3);
        for (i, p) in solved.proofs.iter().enumerate() {
            assert_eq!(p, &oracle_proof(&secret, &copt.preimage, i as u8 + 1, 4));
        }
        // Modelled cost is in the plausible range for (3, 17):
        // 3 sub-puzzles × [1, 2^17] each.
        assert!(solved.hashes >= 3);
        assert!(solved.hashes <= 3 * (1 << 17));
    }

    #[test]
    fn oracle_cost_sampling_varies() {
        let secret = ServerSecret::from_bytes([4; 32]);
        let copt = ChallengeOption {
            k: 1,
            m: 10,
            preimage: vec![1, 2, 3, 4],
            timestamp: None,
            algo: AlgoId::Prefix,
        };
        let strategy = SolveStrategy::Oracle {
            secret,
            cost_model: SolveCostModel::UniformPlacement,
        };
        let mut rng = SimRng::seed_from(3);
        let costs: Vec<u64> = (0..32)
            .map(|_| strategy.solve(&tuple(), &copt, 5, &mut rng).hashes)
            .collect();
        let distinct: std::collections::HashSet<_> = costs.iter().collect();
        assert!(distinct.len() > 5, "cost should vary across solves");
    }

    #[test]
    fn oracle_collide_proofs_pair_and_cost_are_per_algo() {
        let secret = ServerSecret::from_bytes([6; 32]);
        let copt = ChallengeOption {
            k: 2,
            m: 16,
            preimage: vec![9, 8, 7, 6],
            timestamp: None,
            algo: AlgoId::Collide,
        };
        let strategy = SolveStrategy::Oracle {
            secret: secret.clone(),
            cost_model: SolveCostModel::UniformPlacement,
        };
        let mut rng = SimRng::seed_from(7);
        let solved = strategy.solve(&tuple(), &copt, 5, &mut rng);
        assert_eq!(solved.proofs.len(), 2);
        for (i, p) in solved.proofs.iter().enumerate() {
            assert_eq!(p.len(), 8, "pair of l-bit nonces");
            assert_ne!(p[..4], p[4..], "domain-separated halves differ");
            assert_eq!(
                p,
                &oracle_proof_for(AlgoId::Collide, &secret, &copt.preimage, i as u8 + 1, 4)
            );
        }
        // Birthday-model cost: k pairs, each at least 2 hashes and far
        // below the prefix model's k·2^m ceiling.
        assert!(solved.hashes >= 4);
        assert!(solved.hashes < 2 * (1 << 16));
    }

    /// Satellite check: the budget boundary is identical — and inclusive —
    /// for the real solver and the oracle model, because both go through
    /// [`puzzle_core::solve_fits_budget`].
    #[test]
    fn budget_boundary_shared_by_real_and_oracle() {
        let secret = ServerSecret::from_bytes([9; 32]);
        for algo in AlgoId::ALL {
            let d = Difficulty::new(2, 6).unwrap();
            let c = Challenge::issue(&secret, &tuple(), 3, d, 32).unwrap();
            let copt = ChallengeOption {
                k: 2,
                m: 6,
                preimage: c.preimage().to_vec(),
                timestamp: None,
                algo,
            };
            let mut rng = SimRng::seed_from(11);
            let h = SolveStrategy::Real
                .solve(&tuple(), &copt, 3, &mut rng)
                .hashes;
            assert!(
                SolveStrategy::Real
                    .solve_with_budget(&tuple(), &copt, 3, &mut rng, h)
                    .is_some(),
                "{algo}: budget == H fits"
            );
            assert!(
                SolveStrategy::Real
                    .solve_with_budget(&tuple(), &copt, 3, &mut rng, h - 1)
                    .is_none(),
                "{algo}: budget == H-1 misses"
            );

            // Oracle: replay the same RNG stream so the sampled cost is
            // known, then probe the boundary with fresh copies.
            let strategy = SolveStrategy::Oracle {
                secret: secret.clone(),
                cost_model: SolveCostModel::UniformPlacement,
            };
            let oh = strategy
                .solve(&tuple(), &copt, 3, &mut SimRng::seed_from(5))
                .hashes;
            assert!(strategy
                .solve_with_budget(&tuple(), &copt, 3, &mut SimRng::seed_from(5), oh)
                .is_some());
            assert!(strategy
                .solve_with_budget(&tuple(), &copt, 3, &mut SimRng::seed_from(5), oh - 1)
                .is_none());
        }
    }
}
