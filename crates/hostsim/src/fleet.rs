//! Aggregated fleet actors: N flows' worth of traffic from one node.
//!
//! The per-host actors ([`crate::AttackerHost`], [`crate::ClientHost`])
//! model one machine each — faithful, but a simulation node, link, and
//! routing entry per bot caps scenarios at a few hundred endpoints. The
//! fleet actors aggregate an entire botnet (or client population) into
//! a single node: per-flow protocol state lives in flat parallel arrays
//! indexed by flow id, packets map back to their flow arithmetically
//! from `(dst addr, dst port)` (no hash map on the fast path), and one
//! pacing timer drives the aggregate send rate. This is what takes
//! scenarios from hundreds of endpoints to 10⁵–10⁶ flows.
//!
//! Addressing: a fleet owns a `/16` block. Flow `i` maps to address
//! `base + 1 + i / PORTS_PER_ADDR` and port `PORT_BASE + i %
//! PORTS_PER_ADDR`, so one prefix route steers the whole fleet and a
//! million flows fit in ~21 addresses.
//!
//! Fidelity: a fleet flow speaks exactly the same handshake dialect as
//! the per-host actors (same SYN options, same plain/solution ACKs, the
//! same solve-latency model of `hashes / hash_rate` per single-threaded
//! flow), so servers cannot tell a fleet from the equivalent host
//! population — only the simulator's cost per endpoint changes.

use std::net::Ipv4Addr;

use crate::solve::SolveStrategy;
use netsim::{Context, IfaceId, Packet, SimDuration, SimTime, TimerId};
use puzzle_core::ConnectionTuple;
use simmetrics::IntervalSeries;
use tcpstack::{ChallengeOption, SegmentBuilder, SolutionOption, TcpFlags, TcpOption, TcpSegment};

/// First port a fleet flow uses on its address.
pub const PORT_BASE: u16 = 1024;
/// Flows carried per fleet address (ports `PORT_BASE ..`).
pub const PORTS_PER_ADDR: usize = 50_000;

const K_START: u64 = 1;
const K_SEND: u64 = 2;
const K_CONNTO: u64 = 3;
const K_DELAYACK: u64 = 4;
const K_SOLVE: u64 = 5;
const K_RETX: u64 = 6;
const K_CAPTURE: u64 = 7;

/// Timer tag: kind byte, full 32-bit slot epoch, 24-bit flow index.
///
/// The epoch is carried whole: an earlier layout packed only its low 24
/// bits, so after 2²⁴ reuses of one slot a stale timer's tag aliased the
/// live epoch and fired on the wrong flow incarnation. A fleet's flow
/// count is bounded by its `/16` block (≤ 255 × [`PORTS_PER_ADDR`] <
/// 2²⁴), so the index is the field that fits in 24 bits.
const fn tag(kind: u64, epoch: u32, idx: u32) -> u64 {
    debug_assert!(idx <= 0xff_ffff, "flow index exceeds the 24-bit tag field");
    (kind << 56) | ((epoch as u64) << 24) | (idx as u64 & 0xff_ffff)
}

const fn tag_kind(t: u64) -> u64 {
    t >> 56
}

const fn tag_epoch(t: u64) -> u32 {
    ((t >> 24) & 0xffff_ffff) as u32
}

const fn tag_idx(t: u64) -> u32 {
    (t & 0xff_ffff) as u32
}

/// Millisecond timestamp clock (mirrors the stack's client side), kept
/// at full `u64` width internally so it never wraps over a simulation's
/// lifetime. The *wire* TSval is its low 32 bits ([`ts_ms`]), which wrap
/// every 2³² ms ≈ 49.7 days — RFC 7323 semantics, so consumers must
/// compare TSvals with [`tsval_newer_eq`], never numerically.
fn ts_ms64(now: SimTime) -> u64 {
    now.as_nanos() / 1_000_000
}

/// The 32-bit wire TSval for an instant: the internal millisecond clock
/// reduced modulo 2³².
fn ts_ms(now: SimTime) -> u32 {
    ts_ms64(now) as u32
}

/// RFC 7323-style wraparound-aware TSval ordering: `a` is at-or-after
/// `b` on the 32-bit circle (i.e. within half the space ahead of it).
/// This is the comparison TSval consumers must use — after the wire
/// clock wraps, a numerically *smaller* TSval is the newer one.
pub fn tsval_newer_eq(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) < 1 << 31
}

/// Maps flow `i` within `base`'s block to its source address.
pub fn flow_addr(base: Ipv4Addr, i: usize) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(base) + 1 + (i / PORTS_PER_ADDR) as u32)
}

/// Maps flow `i` to its source port.
pub fn flow_port(i: usize) -> u16 {
    PORT_BASE + (i % PORTS_PER_ADDR) as u16
}

/// Inverse of [`flow_addr`]/[`flow_port`]: the flow a packet addressed
/// to `(addr, port)` belongs to, if it is one of `flows`.
fn flow_index(base: Ipv4Addr, flows: usize, addr: Ipv4Addr, port: u16) -> Option<usize> {
    let offset = u32::from(addr).checked_sub(u32::from(base) + 1)? as usize;
    let port = (port as usize).checked_sub(PORT_BASE as usize)?;
    if port >= PORTS_PER_ADDR {
        return None;
    }
    let idx = offset * PORTS_PER_ADDR + port;
    (idx < flows).then_some(idx)
}

/// Per-flow lifecycle state (one byte per flow).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
enum FlowState {
    /// Unused slot, available from the free list.
    #[default]
    Idle,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// Solving a challenge (solve-completion timer armed).
    Solving,
    /// ACK held back by the tool's lag (delayed-ACK timer armed).
    AckPending,
    /// Believes itself established; holds the connection open.
    Holding,
}

/// Flat per-flow state: parallel vectors indexed by flow id. A slot is
/// 4 + 4 + 4 + 1 bytes of fixed state plus two side vectors (pending
/// proofs, deferred segment) that are empty except mid-handshake.
#[derive(Debug, Default)]
struct FlowTable {
    state: Vec<FlowState>,
    /// Generation counter: bumped on every release so stale timers
    /// (reaped flow, reused slot) can be recognized and dropped.
    epoch: Vec<u32>,
    isn: Vec<u32>,
    server_isn: Vec<u32>,
    issued_at: Vec<u32>,
    /// Proofs awaiting the solve-completion timer.
    pending_proofs: Vec<Vec<Vec<u8>>>,
    /// ACK held for the delayed-ACK timer.
    deferred: Vec<Option<TcpSegment>>,
    /// Idle slots (stack).
    free: Vec<u32>,
}

impl FlowTable {
    fn new(flows: usize) -> Self {
        FlowTable {
            state: vec![FlowState::Idle; flows],
            epoch: vec![0; flows],
            isn: vec![0; flows],
            server_isn: vec![0; flows],
            issued_at: vec![0; flows],
            pending_proofs: vec![Vec::new(); flows],
            deferred: vec![None; flows],
            free: (0..flows as u32).rev().collect(),
        }
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    fn active(&self) -> usize {
        self.state.len() - self.free.len()
    }

    /// Claims an idle flow, if any.
    fn claim(&mut self, isn: u32) -> Option<usize> {
        let idx = self.free.pop()? as usize;
        self.state[idx] = FlowState::SynSent;
        self.isn[idx] = isn;
        idx.into()
    }

    /// Releases a flow back to the free list, invalidating its timers.
    fn release(&mut self, idx: usize) {
        debug_assert_ne!(self.state[idx], FlowState::Idle);
        self.state[idx] = FlowState::Idle;
        self.epoch[idx] = self.epoch[idx].wrapping_add(1);
        self.pending_proofs[idx].clear();
        self.deferred[idx] = None;
        self.free.push(idx as u32);
    }

    /// Whether timer tag `t` still refers to the flow's current tenancy.
    /// The tag carries the full 32-bit epoch, so this is an exact match
    /// — a stale timer can never alias a reused slot.
    fn tag_live(&self, t: u64) -> Option<usize> {
        let idx = tag_idx(t) as usize;
        (idx < self.state.len()
            && self.state[idx] != FlowState::Idle
            && self.epoch[idx] == tag_epoch(t))
        .then_some(idx)
    }
}

// ---------------------------------------------------------------------
// Bot fleet
// ---------------------------------------------------------------------

/// The attack an aggregated fleet drives. Rates are *aggregate* across
/// the whole fleet (packets or attempts per second), unlike the
/// per-bot rates of [`crate::AttackKind`].
#[derive(Clone, Debug)]
pub enum FleetAttack {
    /// Half-open SYN flood; optionally from randomized spoofed sources.
    SynFlood {
        /// Aggregate SYNs per second.
        rate: f64,
        /// Spoof random 198.18/15 sources when true.
        spoof: bool,
    },
    /// Handshake-completing connection flood. Concurrency is bounded by
    /// the fleet's flow count (each flow is one socket).
    ConnFlood {
        /// Aggregate connection attempts per second.
        rate: f64,
        /// `Some` for a solving fleet ("SA"), `None` for stock bots.
        solve: Option<SolveStrategy>,
        /// Per-attempt give-up timeout.
        conn_timeout: SimDuration,
        /// Lag between SYN-ACK and the completing ACK (see
        /// [`crate::AttackKind::ConnFlood`]).
        ack_delay: SimDuration,
    },
    /// Every flow mints one legitimate solution, then the fleet replays
    /// the captured ACKs round-robin.
    ReplayFlood {
        /// Aggregate replays per second.
        rate: f64,
        /// Strategy for the per-flow legitimate solves.
        solve: SolveStrategy,
    },
    /// Forged ACKs with random solution bytes from rotating sources.
    SolutionFlood {
        /// Aggregate forged ACKs per second.
        rate: f64,
        /// `k` to fake.
        k: u8,
        /// Bytes per fake solution (`l/8`).
        sol_len: usize,
    },
}

impl FleetAttack {
    fn rate(&self) -> f64 {
        match self {
            FleetAttack::SynFlood { rate, .. }
            | FleetAttack::ConnFlood { rate, .. }
            | FleetAttack::ReplayFlood { rate, .. }
            | FleetAttack::SolutionFlood { rate, .. } => *rate,
        }
    }

    /// Short label for scenario-matrix cells.
    pub fn label(&self) -> &'static str {
        match self {
            FleetAttack::SynFlood { .. } => "syn-flood",
            FleetAttack::ConnFlood { solve: None, .. } => "conn-flood",
            FleetAttack::ConnFlood { solve: Some(_), .. } => "conn-flood-solving",
            FleetAttack::ReplayFlood { .. } => "replay-flood",
            FleetAttack::SolutionFlood { .. } => "solution-flood",
        }
    }
}

/// Bot-fleet configuration.
#[derive(Clone, Debug)]
pub struct BotFleetParams {
    /// Base of the fleet's `/16` source block (host bits zero).
    pub addr_base: Ipv4Addr,
    /// Victim address.
    pub target_addr: Ipv4Addr,
    /// Victim port.
    pub target_port: u16,
    /// The attack, with aggregate rates.
    pub attack: FleetAttack,
    /// Number of flows (sockets) the fleet drives.
    pub flows: usize,
    /// Per-flow SHA-256 throughput (each flow solves single-threaded).
    pub hash_rate: f64,
    /// Attack start.
    pub start: SimTime,
    /// Attack stop.
    pub stop: SimTime,
}

/// Counters a bot fleet keeps about itself. `Debug` output feeds the
/// golden-run digests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BotFleetStats {
    /// Attack packets sent (SYNs, ACKs, replays, forgeries).
    pub packets_sent: u64,
    /// Connection attempts started.
    pub attempts: u64,
    /// Attempts suppressed because every flow was busy.
    pub window_full: u64,
    /// Handshakes the fleet believes completed.
    pub believed_established: u64,
    /// Challenges solved.
    pub solves: u64,
    /// RSTs received.
    pub resets: u64,
    /// Attempts reaped by the connection timeout.
    pub timeouts: u64,
}

/// An aggregated botnet on one simulation node.
#[derive(Debug)]
pub struct BotFleet {
    params: BotFleetParams,
    flows: FlowTable,
    stats: BotFleetStats,
    /// Attack packets per 1 s bin (the fleet's measured rate).
    packets_series: IntervalSeries,
    /// Captured solution ACKs (replay fleets) with the source address
    /// they verify under, replayed round-robin.
    captured: Vec<(Ipv4Addr, TcpSegment)>,
    replay_cursor: usize,
    /// Flows per pacer firing (≥ 1; batches keep the pacer at ≤ ~1 kHz
    /// so timer overhead stays flat as the aggregate rate grows).
    batch: u64,
}

impl BotFleet {
    /// Builds a fleet from its parameters.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero or overflows the `/16` address block.
    pub fn new(params: BotFleetParams) -> Self {
        assert!(params.flows > 0, "fleet needs at least one flow");
        assert!(
            params.flows <= PORTS_PER_ADDR * 255,
            "fleet of {} flows overflows its /16 block",
            params.flows
        );
        let rate = params.attack.rate();
        BotFleet {
            flows: FlowTable::new(params.flows),
            stats: BotFleetStats::default(),
            packets_series: IntervalSeries::new(1.0),
            captured: Vec::new(),
            replay_cursor: 0,
            batch: (rate / 1000.0).ceil().max(1.0) as u64,
            params,
        }
    }

    /// The fleet's address-block base.
    pub fn addr_base(&self) -> Ipv4Addr {
        self.params.addr_base
    }

    /// Flow count.
    pub fn flows(&self) -> usize {
        self.flows.len()
    }

    /// Flows currently mid-attempt or holding a connection.
    pub fn active_flows(&self) -> usize {
        self.flows.active()
    }

    /// Collected counters.
    pub fn stats(&self) -> &BotFleetStats {
        &self.stats
    }

    /// Attack packets per second, binned.
    pub fn packet_series(&self) -> &IntervalSeries {
        &self.packets_series
    }

    fn send(&mut self, ctx: &mut Context<'_, TcpSegment>, src: Ipv4Addr, seg: TcpSegment) {
        self.stats.packets_sent += 1;
        self.packets_series.incr(ctx.now().as_secs_f64());
        ctx.send(IfaceId(0), Packet::new(src, self.params.target_addr, seg));
    }

    fn build_syn(&self, idx: usize, now: SimTime) -> TcpSegment {
        SegmentBuilder::new(flow_port(idx), self.params.target_port)
            .seq(self.flows.isn[idx])
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window_scale(7)
            .timestamps(ts_ms(now), 0)
            .build()
    }

    fn build_plain_ack(&self, idx: usize) -> TcpSegment {
        SegmentBuilder::new(flow_port(idx), self.params.target_port)
            .seq(self.flows.isn[idx].wrapping_add(1))
            .ack_num(self.flows.server_isn[idx].wrapping_add(1))
            .flags(TcpFlags::ACK)
            .build()
    }

    fn build_solution_ack(&self, idx: usize, now: SimTime, proofs: &[Vec<u8>]) -> TcpSegment {
        let sol = SolutionOption::build(1460, 7, proofs, None);
        SegmentBuilder::new(flow_port(idx), self.params.target_port)
            .seq(self.flows.isn[idx].wrapping_add(1))
            .ack_num(self.flows.server_isn[idx].wrapping_add(1))
            .flags(TcpFlags::ACK)
            .timestamps(ts_ms(now), self.flows.issued_at[idx])
            .option(TcpOption::Solution(sol))
            .build()
    }

    /// Starts one connection attempt on a free flow.
    fn start_attempt(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        conn_timeout: SimDuration,
    ) -> Option<usize> {
        let isn = ctx.rng().next_u32();
        let Some(idx) = self.flows.claim(isn) else {
            self.stats.window_full += 1;
            return None;
        };
        self.stats.attempts += 1;
        let syn = self.build_syn(idx, ctx.now());
        let src = flow_addr(self.params.addr_base, idx);
        self.send(ctx, src, syn);
        ctx.set_timer(
            conn_timeout,
            tag(K_CONNTO, self.flows.epoch[idx], idx as u32),
        );
        Some(idx)
    }

    /// One aggregate-pacer firing: `batch` sends.
    fn fire(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        /// The per-send parameters of each attack, all `Copy` — lifted
        /// out of [`FleetAttack`] so the hot loop never clones the
        /// strategy (which carries the oracle secret).
        #[derive(Clone, Copy)]
        enum Plan {
            Syn { spoof: bool },
            Conn { conn_timeout: SimDuration },
            Replay,
            Solution { k: u8, sol_len: usize },
        }
        let plan = match &self.params.attack {
            FleetAttack::SynFlood { spoof, .. } => Plan::Syn { spoof: *spoof },
            FleetAttack::ConnFlood { conn_timeout, .. } => Plan::Conn {
                conn_timeout: *conn_timeout,
            },
            FleetAttack::ReplayFlood { .. } => Plan::Replay,
            FleetAttack::SolutionFlood { k, sol_len, .. } => Plan::Solution {
                k: *k,
                sol_len: *sol_len,
            },
        };
        for _ in 0..self.batch {
            match plan {
                Plan::Syn { spoof } => {
                    let src = if spoof {
                        Ipv4Addr::new(
                            198,
                            18 + (ctx.rng().below(2) as u8),
                            ctx.rng().below(256) as u8,
                            ctx.rng().below(256) as u8,
                        )
                    } else {
                        flow_addr(
                            self.params.addr_base,
                            ctx.rng().below(self.flows.len() as u64) as usize,
                        )
                    };
                    let syn = SegmentBuilder::new(
                        ctx.rng().range_u64(1024, 65_536) as u16,
                        self.params.target_port,
                    )
                    .seq(ctx.rng().next_u32())
                    .flags(TcpFlags::SYN)
                    .mss(1460)
                    .build();
                    self.send(ctx, src, syn);
                }
                Plan::Conn { conn_timeout } => {
                    self.start_attempt(ctx, conn_timeout);
                }
                Plan::Replay => {
                    if !self.captured.is_empty() {
                        self.replay_cursor = (self.replay_cursor + 1) % self.captured.len();
                        let (src, seg) = self.captured[self.replay_cursor].clone();
                        self.send(ctx, src, seg);
                    }
                }
                Plan::Solution { k, sol_len } => {
                    let proofs: Vec<Vec<u8>> = (0..k)
                        .map(|_| {
                            let mut p = vec![0u8; sol_len];
                            ctx.rng().fill_bytes(&mut p);
                            p
                        })
                        .collect();
                    let sol = SolutionOption::build(1460, 7, &proofs, None);
                    let src = flow_addr(
                        self.params.addr_base,
                        ctx.rng().below(self.flows.len() as u64) as usize,
                    );
                    let ack = SegmentBuilder::new(
                        ctx.rng().range_u64(1024, 65_536) as u16,
                        self.params.target_port,
                    )
                    .seq(ctx.rng().next_u32())
                    .ack_num(ctx.rng().next_u32())
                    .flags(TcpFlags::ACK)
                    .timestamps(1, tcpstack::puzzle_clock(ctx.now()))
                    .option(TcpOption::Solution(sol))
                    .build();
                    self.send(ctx, src, ack);
                }
            }
        }
    }

    /// Interval to the next pacer firing: mean `batch/rate`, ±50%
    /// jitter (same desynchronization argument as the per-host bots).
    fn next_interval(&self, ctx: &mut Context<'_, TcpSegment>) -> SimDuration {
        let mean = self.batch as f64 / self.params.attack.rate();
        SimDuration::from_secs_f64(mean * (0.5 + ctx.rng().next_f64()))
    }

    fn on_synack(&mut self, ctx: &mut Context<'_, TcpSegment>, idx: usize, seg: &TcpSegment) {
        if self.flows.state[idx] != FlowState::SynSent
            || seg.ack != self.flows.isn[idx].wrapping_add(1)
        {
            return;
        }
        self.flows.server_isn[idx] = seg.seq;
        let challenge = seg.challenge().cloned();
        // Decide before mutating: clone only the solve strategy, and
        // only on the (expensive anyway) solving path.
        enum Action {
            Solve(SolveStrategy),
            PlainAck { delay: SimDuration },
            Ignore,
        }
        let action = match (&self.params.attack, &challenge) {
            (FleetAttack::ConnFlood { solve: Some(s), .. }, Some(_))
            | (FleetAttack::ReplayFlood { solve: s, .. }, Some(_)) => Action::Solve(s.clone()),
            // Stock flooder (or no challenge demanded): complete the
            // handshake with a plain ACK after the tool's lag.
            (FleetAttack::ConnFlood { ack_delay, .. }, _) => Action::PlainAck { delay: *ack_delay },
            // A replay capture got no challenge: just hold the connection.
            (FleetAttack::ReplayFlood { .. }, None) => Action::PlainAck {
                delay: SimDuration::ZERO,
            },
            (FleetAttack::SynFlood { .. } | FleetAttack::SolutionFlood { .. }, _) => Action::Ignore,
        };
        match action {
            Action::Solve(strategy) => {
                let copt = challenge.expect("solve action implies challenge");
                self.begin_solve(ctx, idx, &copt, seg, &strategy);
            }
            Action::PlainAck { delay } => {
                let ack = self.build_plain_ack(idx);
                self.stats.believed_established += 1;
                if delay > SimDuration::ZERO {
                    self.flows.deferred[idx] = Some(ack);
                    self.flows.state[idx] = FlowState::AckPending;
                    ctx.set_timer(delay, tag(K_DELAYACK, self.flows.epoch[idx], idx as u32));
                } else {
                    self.flows.state[idx] = FlowState::Holding;
                    let src = flow_addr(self.params.addr_base, idx);
                    self.send(ctx, src, ack);
                }
            }
            Action::Ignore => {}
        }
    }

    fn begin_solve(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        idx: usize,
        copt: &ChallengeOption,
        seg: &TcpSegment,
        solve: &SolveStrategy,
    ) {
        let issued_at = seg
            .timestamps()
            .map(|(tsval, _)| tsval)
            .or(copt.timestamp)
            .unwrap_or(0);
        self.flows.issued_at[idx] = issued_at;
        let tuple = ConnectionTuple::new(
            flow_addr(self.params.addr_base, idx),
            flow_port(idx),
            self.params.target_addr,
            self.params.target_port,
            0,
        );
        let solved = solve.solve(&tuple, copt, issued_at, ctx.rng());
        // Each flow solves single-threaded at the fleet's per-flow hash
        // rate; the latency is the whole cost model.
        let latency = SimDuration::from_secs_f64(solved.hashes as f64 / self.params.hash_rate);
        self.flows.pending_proofs[idx] = solved.proofs;
        self.flows.state[idx] = FlowState::Solving;
        self.stats.solves += 1;
        ctx.set_timer(latency, tag(K_SOLVE, self.flows.epoch[idx], idx as u32));
    }
}

impl netsim::Node<TcpSegment> for BotFleet {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        ctx.set_timer(self.params.start.since(SimTime::ZERO), tag(K_START, 0, 0));
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        _iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        let Some(idx) = flow_index(
            self.params.addr_base,
            self.flows.len(),
            pkt.dst,
            pkt.payload.dst_port,
        ) else {
            return;
        };
        if self.flows.state[idx] == FlowState::Idle {
            return;
        }
        let seg = &pkt.payload;
        if seg.flags.contains(TcpFlags::RST) {
            self.stats.resets += 1;
            self.flows.release(idx);
            return;
        }
        if seg.flags.contains(TcpFlags::SYN | TcpFlags::ACK) {
            // `pkt` is owned by this frame, so the segment can be
            // borrowed straight through the handshake path.
            self.on_synack(ctx, idx, &pkt.payload);
        }
        // Data/FIN on held connections is ignored: bots never read.
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, _id: TimerId, t: u64) {
        let now = ctx.now();
        match tag_kind(t) {
            K_START => {
                if let FleetAttack::ReplayFlood { .. } = self.params.attack {
                    // Stagger the capture handshakes across one second
                    // before the replay pacer starts.
                    for i in 0..self.flows.len() {
                        let jitter = SimDuration::from_secs_f64(ctx.rng().next_f64().min(0.999));
                        ctx.set_timer(jitter, tag(K_CAPTURE, 0, i as u32));
                    }
                    ctx.set_timer(SimDuration::from_secs(1), tag(K_SEND, 0, 0));
                } else {
                    let first = self.next_interval(ctx);
                    ctx.set_timer(first, tag(K_SEND, 0, 0));
                }
            }
            K_SEND => {
                if now >= self.params.stop {
                    return;
                }
                self.fire(ctx);
                let next = self.next_interval(ctx);
                ctx.set_timer(next, tag(K_SEND, 0, 0));
            }
            K_CAPTURE => {
                // One capture handshake per timer; the slot choice is
                // arbitrary, so take whichever the free list hands out.
                let isn = ctx.rng().next_u32();
                if let Some(idx) = self.flows.claim(isn) {
                    self.stats.attempts += 1;
                    let syn = self.build_syn(idx, now);
                    let src = flow_addr(self.params.addr_base, idx);
                    self.send(ctx, src, syn);
                }
            }
            K_CONNTO => {
                if let Some(idx) = self.flows.tag_live(t) {
                    self.stats.timeouts += 1;
                    self.flows.release(idx);
                }
            }
            K_DELAYACK => {
                if let Some(idx) = self.flows.tag_live(t) {
                    if let Some(ack) = self.flows.deferred[idx].take() {
                        self.flows.state[idx] = FlowState::Holding;
                        let src = flow_addr(self.params.addr_base, idx);
                        self.send(ctx, src, ack);
                    }
                }
            }
            K_SOLVE => {
                if let Some(idx) = self.flows.tag_live(t) {
                    if self.flows.state[idx] == FlowState::Solving {
                        let proofs = std::mem::take(&mut self.flows.pending_proofs[idx]);
                        let ack = self.build_solution_ack(idx, now, &proofs);
                        if matches!(self.params.attack, FleetAttack::ReplayFlood { .. }) {
                            self.captured
                                .push((flow_addr(self.params.addr_base, idx), ack.clone()));
                        }
                        self.flows.state[idx] = FlowState::Holding;
                        self.stats.believed_established += 1;
                        let src = flow_addr(self.params.addr_base, idx);
                        self.send(ctx, src, ack);
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Client fleet
// ---------------------------------------------------------------------

/// Client-fleet configuration: a benign population on one node.
#[derive(Clone, Debug)]
pub struct ClientFleetParams {
    /// Base of the fleet's `/16` source block.
    pub addr_base: Ipv4Addr,
    /// Server address.
    pub server_addr: Ipv4Addr,
    /// Server port.
    pub server_port: u16,
    /// Concurrent request slots (the population's socket budget).
    pub flows: usize,
    /// Aggregate request rate (requests/second, Poisson).
    pub request_rate: f64,
    /// Bytes requested per connection.
    pub request_size: usize,
    /// Whether the population solves challenges.
    pub behavior: crate::client::SolveBehavior,
    /// Per-flow SHA-256 throughput.
    pub hash_rate: f64,
    /// Give-up deadline per request.
    pub request_timeout: SimDuration,
}

impl ClientFleetParams {
    /// A population equivalent to `n` paper clients (20 req/s each).
    pub fn population(
        addr_base: Ipv4Addr,
        server_addr: Ipv4Addr,
        n: usize,
        behavior: crate::client::SolveBehavior,
    ) -> Self {
        ClientFleetParams {
            addr_base,
            server_addr,
            server_port: 80,
            flows: (n * 64).max(256),
            request_rate: n as f64 * 20.0,
            request_size: 10_000,
            behavior,
            hash_rate: crate::profiles::CLIENT_CPUS[0].hash_rate,
            request_timeout: SimDuration::from_secs(10),
        }
    }
}

/// Counters a client fleet keeps. `Debug` output feeds the golden-run
/// digests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClientFleetStats {
    /// Requests started.
    pub started: u64,
    /// Requests suppressed because every flow was busy.
    pub window_full: u64,
    /// Connections (locally) established.
    pub established: u64,
    /// Requests whose full response arrived.
    pub completed: u64,
    /// Requests that failed (reset, reaped, or SYN retries exhausted).
    pub failed: u64,
    /// Challenges solved.
    pub solves: u64,
}

/// An aggregated benign-client population on one simulation node.
#[derive(Debug)]
pub struct ClientFleet {
    params: ClientFleetParams,
    flows: FlowTable,
    stats: ClientFleetStats,
    /// Application bytes received per 1 s bin (the goodput series).
    bytes_rx: IntervalSeries,
    /// Requests completed per 1 s bin.
    completions: IntervalSeries,
    /// SYN retransmissions left, per flow.
    retries: Vec<u8>,
}

const FLEET_SYN_RETRIES: u8 = 3;
const FLEET_SYN_TIMEOUT: SimDuration = SimDuration::from_secs(1);

impl ClientFleet {
    /// Builds a client fleet.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is zero or overflows the `/16` block.
    pub fn new(params: ClientFleetParams) -> Self {
        assert!(params.flows > 0, "fleet needs at least one flow");
        assert!(
            params.flows <= PORTS_PER_ADDR * 255,
            "fleet of {} flows overflows its /16 block",
            params.flows
        );
        ClientFleet {
            flows: FlowTable::new(params.flows),
            stats: ClientFleetStats::default(),
            bytes_rx: IntervalSeries::new(1.0),
            completions: IntervalSeries::new(1.0),
            retries: vec![0; params.flows],
            params,
        }
    }

    /// The fleet's address-block base.
    pub fn addr_base(&self) -> Ipv4Addr {
        self.params.addr_base
    }

    /// Collected counters.
    pub fn stats(&self) -> &ClientFleetStats {
        &self.stats
    }

    /// Application bytes received per second, binned (goodput).
    pub fn goodput(&self) -> &IntervalSeries {
        &self.bytes_rx
    }

    /// Requests completed per second, binned.
    pub fn completion_series(&self) -> &IntervalSeries {
        &self.completions
    }

    fn send(&self, ctx: &mut Context<'_, TcpSegment>, idx: usize, seg: TcpSegment) {
        let src = flow_addr(self.params.addr_base, idx);
        ctx.send(IfaceId(0), Packet::new(src, self.params.server_addr, seg));
    }

    fn build_syn(&self, idx: usize, now: SimTime) -> TcpSegment {
        SegmentBuilder::new(flow_port(idx), self.params.server_port)
            .seq(self.flows.isn[idx])
            .flags(TcpFlags::SYN)
            .mss(1460)
            .window_scale(7)
            .timestamps(ts_ms(now), 0)
            .build()
    }

    fn start_request(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let isn = ctx.rng().next_u32();
        let Some(idx) = self.flows.claim(isn) else {
            self.stats.window_full += 1;
            return;
        };
        self.stats.started += 1;
        self.retries[idx] = 0;
        let now = ctx.now();
        let syn = self.build_syn(idx, now);
        self.send(ctx, idx, syn);
        let epoch = self.flows.epoch[idx];
        ctx.set_timer(FLEET_SYN_TIMEOUT, tag(K_RETX, epoch, idx as u32));
        ctx.set_timer(
            self.params.request_timeout,
            tag(K_CONNTO, epoch, idx as u32),
        );
    }

    fn finish(&mut self, idx: usize, now: SimTime, completed: bool) {
        if completed {
            self.stats.completed += 1;
            self.completions.incr(now.as_secs_f64());
        } else {
            self.stats.failed += 1;
        }
        self.flows.release(idx);
    }

    fn establish_and_request(&mut self, ctx: &mut Context<'_, TcpSegment>, idx: usize) {
        self.flows.state[idx] = FlowState::Holding;
        self.stats.established += 1;
        let size = self.params.request_size;
        let payload = format!("GET /gettext/{size}").into_bytes();
        let req = SegmentBuilder::new(flow_port(idx), self.params.server_port)
            .seq(self.flows.isn[idx].wrapping_add(1))
            .ack_num(self.flows.server_isn[idx].wrapping_add(1))
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .payload(payload)
            .build();
        self.send(ctx, idx, req);
    }
}

impl netsim::Node<TcpSegment> for ClientFleet {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let first = SimDuration::from_secs_f64(ctx.rng().exp_f64(self.params.request_rate));
        ctx.set_timer(first, tag(K_SEND, 0, 0));
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        _iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        let Some(idx) = flow_index(
            self.params.addr_base,
            self.flows.len(),
            pkt.dst,
            pkt.payload.dst_port,
        ) else {
            return;
        };
        if self.flows.state[idx] == FlowState::Idle {
            return;
        }
        let now = ctx.now();
        let seg = &pkt.payload;
        if seg.flags.contains(TcpFlags::RST) {
            self.finish(idx, now, false);
            return;
        }
        if seg.flags.contains(TcpFlags::SYN | TcpFlags::ACK) {
            if self.flows.state[idx] != FlowState::SynSent
                || seg.ack != self.flows.isn[idx].wrapping_add(1)
            {
                return;
            }
            self.flows.server_isn[idx] = seg.seq;
            match (seg.challenge().cloned(), self.params.behavior.clone()) {
                (Some(copt), crate::client::SolveBehavior::Solve(strategy)) => {
                    let issued_at = seg
                        .timestamps()
                        .map(|(tsval, _)| tsval)
                        .or(copt.timestamp)
                        .unwrap_or(0);
                    self.flows.issued_at[idx] = issued_at;
                    let tuple = ConnectionTuple::new(
                        flow_addr(self.params.addr_base, idx),
                        flow_port(idx),
                        self.params.server_addr,
                        self.params.server_port,
                        0,
                    );
                    let solved = strategy.solve(&tuple, &copt, issued_at, ctx.rng());
                    let latency =
                        SimDuration::from_secs_f64(solved.hashes as f64 / self.params.hash_rate);
                    self.flows.pending_proofs[idx] = solved.proofs;
                    self.flows.state[idx] = FlowState::Solving;
                    self.stats.solves += 1;
                    ctx.set_timer(latency, tag(K_SOLVE, self.flows.epoch[idx], idx as u32));
                }
                (Some(_), crate::client::SolveBehavior::Ignore) | (None, _) => {
                    // Plain ACK (non-adopter answers a challenge with
                    // one too), then the request rides immediately.
                    let ack = SegmentBuilder::new(flow_port(idx), self.params.server_port)
                        .seq(self.flows.isn[idx].wrapping_add(1))
                        .ack_num(self.flows.server_isn[idx].wrapping_add(1))
                        .flags(TcpFlags::ACK)
                        .build();
                    self.send(ctx, idx, ack);
                    self.establish_and_request(ctx, idx);
                }
            }
            return;
        }
        if self.flows.state[idx] == FlowState::Holding
            && (!seg.payload.is_empty() || seg.flags.contains(TcpFlags::FIN))
        {
            self.bytes_rx
                .add(now.as_secs_f64(), seg.payload.len() as f64);
            if seg.flags.contains(TcpFlags::FIN) {
                self.finish(idx, now, true);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, _id: TimerId, t: u64) {
        let now = ctx.now();
        match tag_kind(t) {
            K_SEND => {
                self.start_request(ctx);
                let next = SimDuration::from_secs_f64(ctx.rng().exp_f64(self.params.request_rate));
                ctx.set_timer(next, tag(K_SEND, 0, 0));
            }
            K_RETX => {
                if let Some(idx) = self.flows.tag_live(t) {
                    if self.flows.state[idx] != FlowState::SynSent {
                        return;
                    }
                    if self.retries[idx] >= FLEET_SYN_RETRIES {
                        self.finish(idx, now, false);
                        return;
                    }
                    self.retries[idx] += 1;
                    let syn = self.build_syn(idx, now);
                    self.send(ctx, idx, syn);
                    let backoff = FLEET_SYN_TIMEOUT * (1u64 << self.retries[idx]);
                    ctx.set_timer(backoff, tag(K_RETX, self.flows.epoch[idx], idx as u32));
                }
            }
            K_CONNTO => {
                if let Some(idx) = self.flows.tag_live(t) {
                    self.finish(idx, now, false);
                }
            }
            K_SOLVE => {
                if let Some(idx) = self.flows.tag_live(t) {
                    if self.flows.state[idx] == FlowState::Solving {
                        let proofs = std::mem::take(&mut self.flows.pending_proofs[idx]);
                        let sol = SolutionOption::build(1460, 7, &proofs, None);
                        let ack = SegmentBuilder::new(flow_port(idx), self.params.server_port)
                            .seq(self.flows.isn[idx].wrapping_add(1))
                            .ack_num(self.flows.server_isn[idx].wrapping_add(1))
                            .flags(TcpFlags::ACK)
                            .timestamps(ts_ms(now), self.flows.issued_at[idx])
                            .option(TcpOption::Solution(sol))
                            .build();
                        self.send(ctx, idx, ack);
                        self.establish_and_request(ctx, idx);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_addressing_round_trips() {
        let base = Ipv4Addr::new(10, 64, 0, 0);
        for i in [
            0usize,
            1,
            PORTS_PER_ADDR - 1,
            PORTS_PER_ADDR,
            123_456,
            999_999,
        ] {
            let (a, p) = (flow_addr(base, i), flow_port(i));
            assert_eq!(flow_index(base, 1_000_000, a, p), Some(i), "flow {i}");
        }
        // Outside the fleet: wrong port range, wrong address.
        assert_eq!(flow_index(base, 10, flow_addr(base, 0), 80), None);
        assert_eq!(
            flow_index(base, 10, Ipv4Addr::new(10, 63, 255, 255), PORT_BASE),
            None
        );
        // Flow id past the fleet size.
        assert_eq!(
            flow_index(base, 10, flow_addr(base, 10), flow_port(10)),
            None
        );
    }

    #[test]
    fn flow_table_claim_release_cycles() {
        let mut t = FlowTable::new(3);
        let a = t.claim(1).unwrap();
        let b = t.claim(2).unwrap();
        let c = t.claim(3).unwrap();
        assert_eq!(t.claim(4), None, "window exhausted");
        assert_eq!(t.active(), 3);
        let tag_a = tag(K_CONNTO, t.epoch[a], a as u32);
        t.release(b);
        assert_eq!(t.tag_live(tag_a), Some(a));
        // Released flow's old tag is dead even after the slot is reused.
        let tag_b = tag(K_CONNTO, t.epoch[b].wrapping_sub(1), b as u32);
        assert_eq!(t.claim(5), Some(b));
        assert_eq!(t.tag_live(tag_b), None);
        let _ = c;
    }

    #[test]
    fn ephemeral_port_range_includes_65535() {
        // Regression: `range_u64`'s upper bound is exclusive, so the old
        // `range_u64(1024, 65_535)` sampler could never mint port 65535.
        // The fixed bound (65_536) covers the whole ephemeral range.
        let mut rng = netsim::rng::SimRng::seed_from(42);
        let mut hit_top = false;
        for _ in 0..1_000_000 {
            let port = rng.range_u64(1024, 65_536) as u16;
            assert!(port >= 1024);
            hit_top |= port == 65_535;
        }
        assert!(hit_top, "port 65535 must be reachable");
    }

    #[test]
    fn tag_packs_and_unpacks() {
        // Full 32-bit epoch and the largest 24-bit flow index round-trip.
        let t = tag(K_SOLVE, 0xdead_beef, 0xff_ffff);
        assert_eq!(tag_kind(t), K_SOLVE);
        assert_eq!(tag_epoch(t), 0xdead_beef);
        assert_eq!(tag_idx(t), 0xff_ffff);
    }

    #[test]
    fn epochs_straddling_2_pow_24_do_not_alias() {
        // Regression: the old layout carried only the low 24 epoch bits,
        // so epoch 2^24 aliased epoch 0 and a stale timer from 2^24
        // releases ago fired on the wrong flow incarnation.
        let mut t = FlowTable::new(2);
        let idx = t.claim(1).unwrap();
        t.epoch[idx] = 0xff_ffff; // one release below the boundary
        let stale = tag(K_CONNTO, t.epoch[idx], idx as u32);
        t.release(idx); // epoch -> 0x100_0000
        assert_eq!(t.claim(2), Some(idx));
        assert_eq!(t.epoch[idx], 0x100_0000);
        assert_eq!(t.tag_live(stale), None, "pre-boundary tag must be dead");
        // A tag minted at the post-boundary epoch is live — and distinct
        // from an epoch-0 tag, which the masked layout confused it with.
        let live = tag(K_CONNTO, t.epoch[idx], idx as u32);
        assert_eq!(t.tag_live(live), Some(idx));
        let epoch_zero = tag(K_CONNTO, 0, idx as u32);
        assert_ne!(live, epoch_zero);
        assert_eq!(t.tag_live(epoch_zero), None, "2^24 must not alias 0");
    }

    #[test]
    fn ts_clock_survives_the_u32_millisecond_wrap() {
        // 2^32 ms ≈ 49.7 sim-days. The internal clock must keep counting
        // (never wrap), while the wire TSval wraps modulo 2^32 and stays
        // monotone under the RFC 7323 wraparound-aware comparison.
        let wrap_ms: u64 = 1 << 32;
        let mut prev = SimTime::from_millis(wrap_ms - 50);
        for step in 1..=20u64 {
            let now = SimTime::from_millis(wrap_ms - 50 + step * 10);
            assert!(ts_ms64(now) > ts_ms64(prev), "internal clock monotone");
            assert!(
                tsval_newer_eq(ts_ms(now), ts_ms(prev)),
                "wire TSval {} must be RFC-newer than {}",
                ts_ms(now),
                ts_ms(prev)
            );
            assert!(
                !tsval_newer_eq(ts_ms(prev), ts_ms(now).wrapping_add(1)),
                "ordering is strict across the wrap"
            );
            prev = now;
        }
        // Directly across the boundary the raw numeric comparison inverts…
        let (before, after) = (
            ts_ms(SimTime::from_millis(wrap_ms - 1)),
            ts_ms(SimTime::from_millis(wrap_ms + 1)),
        );
        assert!(after < before, "numeric order inverts at the wrap");
        // …but the wraparound-aware one does not.
        assert!(tsval_newer_eq(after, before));
        assert!(!tsval_newer_eq(before, after));
    }

    #[test]
    fn fleet_tsvals_stay_monotone_past_the_wrap() {
        // A fleet stepped past the 49.7-day wrap point keeps stamping
        // SYNs (and echoing, via `issued_at`) timestamps that are
        // monotone in the RFC 7323 sense.
        let mut fleet = BotFleet::new(BotFleetParams {
            addr_base: Ipv4Addr::new(10, 64, 0, 0),
            target_addr: Ipv4Addr::new(10, 1, 0, 1),
            target_port: 80,
            attack: FleetAttack::ConnFlood {
                rate: 100.0,
                solve: None,
                conn_timeout: SimDuration::from_secs(1),
                ack_delay: SimDuration::ZERO,
            },
            flows: 4,
            hash_rate: 400_000.0,
            start: SimTime::ZERO,
            stop: SimTime::from_secs(1),
        });
        let idx = fleet.flows.claim(7).unwrap();
        let wrap_ms: u64 = 1 << 32;
        let mut prev_tsval: Option<u32> = None;
        for step in 0..40u64 {
            let now = SimTime::from_millis(wrap_ms - 200 + step * 10);
            let syn = fleet.build_syn(idx, now);
            let (tsval, _) = syn.timestamps().expect("fleet SYNs carry timestamps");
            if let Some(prev) = prev_tsval {
                assert!(
                    tsval_newer_eq(tsval, prev),
                    "TSval {tsval} regressed behind {prev} at step {step}"
                );
            }
            prev_tsval = Some(tsval);
        }
    }

    #[test]
    fn batch_scales_with_rate() {
        let mk = |rate| {
            BotFleet::new(BotFleetParams {
                addr_base: Ipv4Addr::new(10, 64, 0, 0),
                target_addr: Ipv4Addr::new(10, 1, 0, 1),
                target_port: 80,
                attack: FleetAttack::SynFlood { rate, spoof: true },
                flows: 100,
                hash_rate: 400_000.0,
                start: SimTime::ZERO,
                stop: SimTime::from_secs(10),
            })
        };
        assert_eq!(mk(500.0).batch, 1);
        assert_eq!(mk(100_000.0).batch, 100);
    }
}
