//! Named attack/client fleet mixes, constructible outside the
//! simulation.
//!
//! The scenario matrix builds its fleets inline; the live wire load
//! generator (`crates/wire`) needs the *same* population shapes —
//! spoofed SYN floods, solving conn-floods, Poisson legit clients —
//! but driven by a [`netsim::harness::NodeHarness`] against a real
//! socket instead of a simulated link. This module gives those shapes
//! names so both paths (and the `live_load` CLI) speak one vocabulary.
//!
//! Nothing here is used by the pinned sim scenarios: the golden digests
//! depend on the scenario harness's own construction order and RNG
//! draws, which this module never touches.

use std::net::Ipv4Addr;

use netsim::{SimDuration, SimTime};

use crate::client::SolveBehavior;
use crate::fleet::{BotFleetParams, ClientFleetParams, FleetAttack};
use crate::solve::SolveStrategy;

/// Everything a named mix needs besides its shape: where to aim, how
/// hard, and how solving is costed.
#[derive(Clone, Debug)]
pub struct MixParams {
    /// Base of the fleet's `/16` source block (host bits zero).
    pub addr_base: Ipv4Addr,
    /// Server / victim address.
    pub target_addr: Ipv4Addr,
    /// Server / victim port.
    pub target_port: u16,
    /// Aggregate rate: SYNs, connection attempts, or requests per
    /// second depending on the mix.
    pub rate: f64,
    /// Flow (socket) slots the fleet drives.
    pub flows: usize,
    /// Activity window start.
    pub start: SimTime,
    /// Activity window stop.
    pub stop: SimTime,
    /// Per-flow SHA-256 throughput for solve-latency modelling.
    pub hash_rate: f64,
    /// How solving mixes produce proofs (real brute force or oracle).
    pub solve: SolveStrategy,
    /// Bytes requested per legit-client connection.
    pub request_size: usize,
}

impl MixParams {
    /// Sensible live-loopback defaults: everything but the target and
    /// the solve strategy has a reasonable value (1 kreq/s aggregate,
    /// 4096 flows, always-on window, 40 MH/s solver).
    pub fn new(
        addr_base: Ipv4Addr,
        target_addr: Ipv4Addr,
        target_port: u16,
        solve: SolveStrategy,
    ) -> Self {
        MixParams {
            addr_base,
            target_addr,
            target_port,
            rate: 1_000.0,
            flows: 4096,
            start: SimTime::ZERO,
            stop: SimTime::MAX,
            hash_rate: 40e6,
            solve,
            request_size: 10_000,
        }
    }
}

/// A named mix resolved to concrete fleet parameters.
#[derive(Clone, Debug)]
pub enum FleetSpec {
    /// An attacking population ([`crate::BotFleet`]).
    Bots(BotFleetParams),
    /// A benign population ([`crate::ClientFleet`]).
    Clients(ClientFleetParams),
}

/// The mix names [`by_name`] accepts, in presentation order.
pub fn names() -> &'static [&'static str] {
    &[
        "clients",
        "clients-ignore",
        "syn-flood",
        "conn-flood",
        "conn-flood-solving",
        "replay-flood",
        "solution-flood",
    ]
}

/// Resolves a mix name to fleet parameters. Attack names match
/// [`FleetAttack::label`]; `clients` is the solving legit population
/// and `clients-ignore` the unpatched one (the paper's "NC").
pub fn by_name(name: &str, p: &MixParams) -> Option<FleetSpec> {
    let bots = |attack: FleetAttack| {
        FleetSpec::Bots(BotFleetParams {
            addr_base: p.addr_base,
            target_addr: p.target_addr,
            target_port: p.target_port,
            attack,
            flows: p.flows,
            hash_rate: p.hash_rate,
            start: p.start,
            stop: p.stop,
        })
    };
    let clients = |behavior: SolveBehavior| {
        FleetSpec::Clients(ClientFleetParams {
            addr_base: p.addr_base,
            server_addr: p.target_addr,
            server_port: p.target_port,
            flows: p.flows,
            request_rate: p.rate,
            request_size: p.request_size,
            behavior,
            hash_rate: p.hash_rate,
            request_timeout: SimDuration::from_secs(10),
        })
    };
    Some(match name {
        "clients" => clients(SolveBehavior::Solve(p.solve.clone())),
        "clients-ignore" => clients(SolveBehavior::Ignore),
        "syn-flood" => bots(FleetAttack::SynFlood {
            rate: p.rate,
            spoof: true,
        }),
        "conn-flood" => bots(FleetAttack::ConnFlood {
            rate: p.rate,
            solve: None,
            conn_timeout: SimDuration::from_secs(1),
            ack_delay: SimDuration::from_millis(500),
        }),
        "conn-flood-solving" => bots(FleetAttack::ConnFlood {
            rate: p.rate,
            solve: Some(p.solve.clone()),
            conn_timeout: SimDuration::from_secs(1),
            ack_delay: SimDuration::from_millis(500),
        }),
        "replay-flood" => bots(FleetAttack::ReplayFlood {
            rate: p.rate,
            solve: p.solve.clone(),
        }),
        "solution-flood" => bots(FleetAttack::SolutionFlood {
            rate: p.rate,
            k: 2,
            sol_len: 4,
        }),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> MixParams {
        MixParams::new(
            Ipv4Addr::new(198, 18, 0, 0),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            SolveStrategy::Real,
        )
    }

    /// Every attack mix resolves to bot parameters whose attack label
    /// round-trips to the mix name — the `live_load` CLI and the
    /// scenario matrix agree on the vocabulary.
    #[test]
    fn attack_names_round_trip_to_labels() {
        let p = params();
        for name in names() {
            let spec = by_name(name, &p).expect("listed name resolves");
            if let FleetSpec::Bots(bots) = spec {
                assert_eq!(bots.attack.label(), *name);
                assert_eq!(bots.target_port, 80);
            } else {
                assert!(name.starts_with("clients"), "{name}");
            }
        }
    }

    #[test]
    fn client_mixes_carry_behavior() {
        let p = params();
        match by_name("clients", &p) {
            Some(FleetSpec::Clients(c)) => {
                assert!(matches!(c.behavior, SolveBehavior::Solve(_)));
                assert_eq!(c.request_rate, 1_000.0);
            }
            other => panic!("clients resolved to {other:?}"),
        }
        match by_name("clients-ignore", &p) {
            Some(FleetSpec::Clients(c)) => {
                assert!(matches!(c.behavior, SolveBehavior::Ignore))
            }
            other => panic!("clients-ignore resolved to {other:?}"),
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(by_name("teardrop", &params()).is_none());
    }
}
