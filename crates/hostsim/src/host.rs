//! The node enum wiring all host behaviours into the simulator.

use crate::attacker::AttackerHost;
use crate::client::ClientHost;
use crate::fleet::{BotFleet, ClientFleet};
use crate::server::ServerHost;
use netsim::{Context, IfaceId, Node, Packet, Router, TimerId};
use tcpstack::TcpSegment;

/// A simulated machine in the testbed: one of the paper's actor types.
///
/// Using an enum (rather than trait objects) keeps the simulator's
/// dispatch static and lets experiments pattern-match nodes to harvest
/// metrics after a run.
// Variant sizes intentionally differ: hosts are constructed once per
// simulation (not churned), and boxing the large server variant would
// reintroduce the indirection this enum exists to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Host {
    /// A backbone router (Fig. 16's core).
    Router(Router),
    /// The victim server.
    Server(ServerHost),
    /// A benign client.
    Client(ClientHost),
    /// A botnet member.
    Attacker(AttackerHost),
    /// An aggregated botnet (N attack flows on one node).
    BotFleet(BotFleet),
    /// An aggregated benign-client population.
    ClientFleet(ClientFleet),
}

impl Host {
    /// The server behaviour, if this node is one.
    pub fn as_server(&self) -> Option<&ServerHost> {
        match self {
            Host::Server(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable server access.
    pub fn as_server_mut(&mut self) -> Option<&mut ServerHost> {
        match self {
            Host::Server(s) => Some(s),
            _ => None,
        }
    }

    /// The client behaviour, if this node is one.
    pub fn as_client(&self) -> Option<&ClientHost> {
        match self {
            Host::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The attacker behaviour, if this node is one.
    pub fn as_attacker(&self) -> Option<&AttackerHost> {
        match self {
            Host::Attacker(a) => Some(a),
            _ => None,
        }
    }

    /// The router, if this node is one.
    pub fn as_router(&self) -> Option<&Router> {
        match self {
            Host::Router(r) => Some(r),
            _ => None,
        }
    }

    /// Mutable router access (for route installation).
    pub fn as_router_mut(&mut self) -> Option<&mut Router> {
        match self {
            Host::Router(r) => Some(r),
            _ => None,
        }
    }

    /// The bot fleet, if this node is one.
    pub fn as_bot_fleet(&self) -> Option<&BotFleet> {
        match self {
            Host::BotFleet(f) => Some(f),
            _ => None,
        }
    }

    /// The client fleet, if this node is one.
    pub fn as_client_fleet(&self) -> Option<&ClientFleet> {
        match self {
            Host::ClientFleet(f) => Some(f),
            _ => None,
        }
    }
}

impl From<Router> for Host {
    fn from(r: Router) -> Host {
        Host::Router(r)
    }
}
impl From<ServerHost> for Host {
    fn from(s: ServerHost) -> Host {
        Host::Server(s)
    }
}
impl From<ClientHost> for Host {
    fn from(c: ClientHost) -> Host {
        Host::Client(c)
    }
}
impl From<AttackerHost> for Host {
    fn from(a: AttackerHost) -> Host {
        Host::Attacker(a)
    }
}
impl From<BotFleet> for Host {
    fn from(f: BotFleet) -> Host {
        Host::BotFleet(f)
    }
}
impl From<ClientFleet> for Host {
    fn from(f: ClientFleet) -> Host {
        Host::ClientFleet(f)
    }
}

impl Node<TcpSegment> for Host {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        match self {
            Host::Router(_) => {}
            Host::Server(s) => s.on_start(ctx),
            Host::Client(c) => c.on_start(ctx),
            Host::Attacker(a) => a.on_start(ctx),
            Host::BotFleet(f) => f.on_start(ctx),
            Host::ClientFleet(f) => f.on_start(ctx),
        }
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        match self {
            Host::Router(r) => r.on_packet(ctx, iface, pkt),
            Host::Server(s) => s.on_packet(ctx, iface, pkt),
            Host::Client(c) => c.on_packet(ctx, iface, pkt),
            Host::Attacker(a) => a.on_packet(ctx, iface, pkt),
            Host::BotFleet(f) => f.on_packet(ctx, iface, pkt),
            Host::ClientFleet(f) => f.on_packet(ctx, iface, pkt),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, id: TimerId, tag: u64) {
        match self {
            Host::Router(_) => {}
            Host::Server(s) => s.on_timer(ctx, id, tag),
            Host::Client(c) => c.on_timer(ctx, id, tag),
            Host::Attacker(a) => a.on_timer(ctx, id, tag),
            Host::BotFleet(f) => f.on_timer(ctx, id, tag),
            Host::ClientFleet(f) => f.on_timer(ctx, id, tag),
        }
    }
}
