//! The victim server: listener + prefork-style worker-pool application.
//!
//! Reproduces the paper's deployment (§6): an apache2-style server whose
//! application accepts `gettext/<size>` requests and returns `size` bytes.
//! The application follows apache's prefork shape — a connection *is* a
//! worker:
//!
//! * a free worker `accept()`s the oldest established connection; with no
//!   free workers the accept queue backs up (and, upstream, completing
//!   handshakes stick in the listen queue — how floods clog the stack);
//! * a worker whose connection has not yet sent a request **parks** on a
//!   read with `read_timeout` (apache's `Timeout`). Dead flood
//!   connections pin workers for exactly that long, so the sustainable
//!   flood-completion rate is `workers / read_timeout` — calibrated to
//!   the ~225 completions/s the paper measures against cookies (Fig. 11);
//! * request service time is exponential at per-worker rate
//!   `service_rate / workers`, so the pool's aggregate capacity is the
//!   stress-test plateau µ (Fig. 3b);
//! * the response is sent in MSS-sized chunks with FIN on the last.
//!
//! CPU time for issuance (the listener's exact `issue_hashes` count:
//! challenge pre-image + keyed ISN mint = 3 hashes per challenge, cookie
//! MAC = 2, stateful/SYN-cache ISN mint = 2) and verification (2 hashes
//! for a rejected solution — pre-image + first failing proof; `1 + k`
//! for an accepted one) is charged to the server's [`Cpu`] at its
//! 10.8 MH/s profile, feeding the Fig. 9 utilization series.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::cpu::Cpu;
use crate::profiles::SERVER_HASH_RATE;
use netsim::{Context, IfaceId, Packet, SimDuration, SimTime, TimerId};
use puzzle_core::ServerSecret;
use simmetrics::{IntervalSeries, SampleSeries};
use tcpstack::{
    FlowKey, ListenerConfig, ListenerEvent, ListenerStats, PolicyBuilder, ShardedListener,
    TcpSegment,
};

/// Timer tag kinds (high byte of the tag).
const K_TICK: u64 = 1;
const K_POLL: u64 = 2;
const K_READTO: u64 = 3;
const K_SERVICE: u64 = 4;

const fn tag(kind: u64, payload: u64) -> u64 {
    (kind << 56) | payload
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerParams {
    /// The server's address.
    pub addr: Ipv4Addr,
    /// Listening port.
    pub port: u16,
    /// Listen-queue capacity (backlog).
    pub backlog: usize,
    /// Accept-queue capacity.
    pub accept_backlog: usize,
    /// Defence policy factory: each server builds a fresh live policy
    /// bound to its listener's secret and backend. Compose with
    /// [`PolicyBuilder::stacked`] or go closed-loop with
    /// [`PolicyBuilder::adaptive_puzzles`].
    pub defense: PolicyBuilder<puzzle_crypto::AutoBackend>,
    /// Worker pool size (apache's MaxRequestWorkers; a connection holds a
    /// worker from accept to close).
    pub workers: usize,
    /// How long a worker waits for a request before dropping the
    /// connection (apache's `Timeout`).
    pub read_timeout: SimDuration,
    /// Aggregate application service rate µ (requests/second).
    pub service_rate: f64,
    /// Server SHA-256 throughput for puzzle work.
    pub hash_rate: f64,
    /// The puzzle/cookie secret.
    pub secret: ServerSecret,
    /// Listener shards (RSS-style per-core partitioning; rounded up to a
    /// power of two). `1` — the default — is the single serial listener
    /// every pre-sharding golden digest was captured under; higher
    /// values split the backlogs and admission path across N independent
    /// [`ShardedListener`] shards.
    pub shards: usize,
    /// How a multi-shard listener steps its shards
    /// ([`tcpstack::ShardPipeline`]): `Auto` — the default — runs the
    /// persistent worker pipeline when the host has more than one
    /// hardware thread and steps in-line otherwise; `Persistent` /
    /// `Inline` force one path (useful to exercise the worker pipeline
    /// deterministically, e.g. the golden suite's persistent-pipeline
    /// leg on a single-core host). Simulation output is byte-identical
    /// across modes — only where the stepping runs changes.
    pub pipeline: tcpstack::ShardPipeline,
}

impl ServerParams {
    /// Defaults matching the paper's deployment: µ = 1100 req/s over a
    /// 150-worker pool (apache's default MaxRequestWorkers) with a 5 s
    /// read timeout. Dead flood connections drain at
    /// `workers/read_timeout = 30/s`; once the accept queue backs up
    /// behind a poisoned pool, admission latency exceeds a client's
    /// patience — the cookie-mode collapse of Figs. 8 and 11. 10.8 MH/s
    /// crypto per §7.
    pub fn new(
        addr: Ipv4Addr,
        port: u16,
        defense: PolicyBuilder<puzzle_crypto::AutoBackend>,
    ) -> Self {
        ServerParams {
            addr,
            port,
            backlog: 1024,
            accept_backlog: 1024,
            defense,
            workers: 150,
            read_timeout: SimDuration::from_secs(5),
            service_rate: crate::profiles::PAPER_MU,
            hash_rate: SERVER_HASH_RATE,
            secret: ServerSecret::from_bytes([0x5e; 32]),
            shards: 1,
            pipeline: tcpstack::ShardPipeline::Auto,
        }
    }
}

/// Everything the figures measure at the server.
#[derive(Clone, Debug)]
pub struct ServerMetrics {
    /// Application bytes sent per 1 s bin (Figs. 7–8 server throughput).
    pub bytes_tx: IntervalSeries,
    /// Requests fully served.
    pub requests_served: u64,
    /// Worker read timeouts (connections that never sent a request).
    pub read_timeouts: u64,
    /// `(time, client address)` for every established connection — the
    /// source-attributable rate data behind Figs. 11, 13, 14.
    pub established_log: Vec<(f64, Ipv4Addr)>,
    /// Listen-queue depth samples (Fig. 10).
    pub listen_depth: SampleSeries,
    /// Accept-queue depth samples (Fig. 10).
    pub accept_depth: SampleSeries,
    /// Busy-worker samples.
    pub busy_workers: SampleSeries,
    /// CPU utilization samples (Fig. 9).
    pub cpu_util: SampleSeries,
    /// SYN-ACKs-with-challenge per second (the Fig. 8 sparkline).
    pub challenge_rate: SampleSeries,
    /// Plain SYN-ACKs per second (the sparkline's dark ticks).
    pub plain_synack_rate: SampleSeries,
    /// Difficulty bits `m` in force over time (adaptive controller).
    pub difficulty_m: SampleSeries,
    /// Peak of the defence policy's retained per-flow state
    /// ([`tcpstack::PolicyStats::state_bytes`]), sampled once per
    /// second. The near-stateless policy's headline observable: O(the
    /// acceptance window) where classic puzzles and the SYN cache grow
    /// with flow count.
    pub peak_defense_state_bytes: u64,
}

impl ServerMetrics {
    fn new() -> Self {
        ServerMetrics {
            bytes_tx: IntervalSeries::new(1.0),
            requests_served: 0,
            read_timeouts: 0,
            established_log: Vec::new(),
            listen_depth: SampleSeries::new(),
            accept_depth: SampleSeries::new(),
            busy_workers: SampleSeries::new(),
            cpu_util: SampleSeries::new(),
            challenge_rate: SampleSeries::new(),
            plain_synack_rate: SampleSeries::new(),
            difficulty_m: SampleSeries::new(),
            peak_defense_state_bytes: 0,
        }
    }

    /// Established connections per second attributed to `addrs`, binned at
    /// `interval` seconds — e.g. the attackers' effective rate (Fig. 11).
    pub fn established_rate_for(&self, addrs: &[Ipv4Addr], interval: f64) -> IntervalSeries {
        let mut s = IntervalSeries::new(interval);
        for (t, addr) in &self.established_log {
            if addrs.contains(addr) {
                s.incr(*t);
            }
        }
        s
    }
}

/// A worker occupied by a flow, in one of two phases.
#[derive(Clone, Copy, Debug)]
enum WorkerPhase {
    /// Waiting for the request: read-timeout timer and its job id.
    Reading(TimerId, u64),
    /// Serving (service-completion timer armed).
    Serving,
}

/// The server host behaviour.
#[derive(Debug)]
pub struct ServerHost {
    params: ServerParams,
    /// The listening socket — [`ServerParams::shards`] RSS-style shards
    /// behind one facade (a transparent single listener at `shards: 1`)
    /// — hashing through the process-wide auto-selected backend
    /// (SHA-NI → multi-lane → scalar; overridable via `PUZZLE_BACKEND`).
    /// Every backend is digest-identical, so simulation results do not
    /// depend on the selection — only the CPU time burned per
    /// verification does.
    listener: ShardedListener<puzzle_crypto::AutoBackend>,
    cpu: Cpu,
    metrics: ServerMetrics,
    free_workers: usize,
    /// Worker state per accepted flow.
    busy: HashMap<FlowKey, WorkerPhase>,
    /// Response size for flows currently in service.
    serving_size: HashMap<FlowKey, usize>,
    /// Requests that arrived before a worker picked up the flow.
    pending_requests: HashMap<FlowKey, usize>,
    /// Timer payload → flow resolution.
    jobs: HashMap<u64, FlowKey>,
    next_job: u64,
    /// Listener stats at the previous CPU accounting point.
    prev_stats: ListenerStats,
    /// Listener stats at the previous sparkline sample.
    prev_tick_stats: ListenerStats,
}

impl ServerHost {
    /// Builds the server from its parameters.
    pub fn new(params: ServerParams) -> Self {
        let mut lcfg = ListenerConfig::new(params.addr, params.port);
        lcfg.backlog = params.backlog;
        lcfg.accept_backlog = params.accept_backlog;
        let listener = ShardedListener::with_policy_pipeline(
            lcfg,
            params.secret.clone(),
            puzzle_crypto::auto_backend(),
            &params.defense,
            params.shards,
            params.pipeline,
        );
        ServerHost {
            cpu: Cpu::new(params.hash_rate),
            listener,
            metrics: ServerMetrics::new(),
            free_workers: params.workers,
            busy: HashMap::new(),
            serving_size: HashMap::new(),
            pending_requests: HashMap::new(),
            jobs: HashMap::new(),
            next_job: 0,
            prev_stats: ListenerStats::default(),
            prev_tick_stats: ListenerStats::default(),
            params,
        }
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.params.addr
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Listener counters.
    pub fn listener_stats(&self) -> ListenerStats {
        self.listener.stats()
    }

    /// Live queue depths `(listen, accept)`.
    pub fn queue_depths(&self) -> (usize, usize) {
        self.listener.queue_depths()
    }

    /// Workers currently occupied.
    pub fn busy_workers(&self) -> usize {
        self.params.workers - self.free_workers
    }

    /// Runtime difficulty tuning (sysctl analogue). Returns whether the
    /// installed defence policy applied it — `false` for policies
    /// without a difficulty knob (and for closed-loop policies, which
    /// own the knob themselves).
    pub fn set_difficulty(&mut self, difficulty: puzzle_core::Difficulty) -> bool {
        self.listener.set_difficulty(difficulty)
    }

    fn alloc_job(&mut self, flow: FlowKey) -> u64 {
        self.next_job += 1;
        self.jobs.insert(self.next_job, flow);
        self.next_job
    }

    fn send_all(&self, ctx: &mut Context<'_, TcpSegment>, replies: Vec<(Ipv4Addr, TcpSegment)>) {
        for (dst, seg) in replies {
            ctx.send(IfaceId(0), Packet::new(self.params.addr, dst, seg));
        }
    }

    /// Charges defence crypto work since the last call to the CPU model.
    ///
    /// The listener's counters are the single source of truth:
    /// `issue_hashes` is the exact issuance-side charge (challenge
    /// pre-image = 1, cookie MAC = 2, server-ISN mint = 2 — so a
    /// challenge costs 3 in total, refining the paper's g(p) = 1 to what
    /// the stack actually computes) and `verify_hashes` is the exact
    /// per-solution charge reported by the verification chokepoint
    /// (1 + checked proofs; replay-cache hits are free), so the CPU
    /// model tracks the paper's accounting without re-estimating it.
    fn account_crypto(&mut self, now: SimTime) {
        let s = self.listener.stats();
        let p = self.prev_stats;
        let issue = (s.issue_hashes - p.issue_hashes) as f64; // exact charge
        let verify = (s.verify_hashes - p.verify_hashes) as f64; // exact charge
        let hashes = issue + verify;
        if hashes > 0.0 {
            self.cpu.schedule_hashes(now, hashes);
        }
        self.prev_stats = s;
    }

    fn handle_events(&mut self, ctx: &mut Context<'_, TcpSegment>, events: Vec<ListenerEvent>) {
        let now = ctx.now();
        for ev in events {
            match ev {
                ListenerEvent::Established { flow, .. } => {
                    self.metrics
                        .established_log
                        .push((now.as_secs_f64(), flow.addr));
                }
                ListenerEvent::Data { flow, payload, fin } => {
                    if let Some(size) = parse_gettext_request(&payload) {
                        match self.busy.get(&flow) {
                            Some(WorkerPhase::Reading(timer, job)) => {
                                ctx.cancel_timer(*timer);
                                self.jobs.remove(&{ *job });
                                self.start_service(ctx, flow, size);
                            }
                            Some(WorkerPhase::Serving) => {} // duplicate request
                            None => {
                                self.pending_requests.insert(flow, size);
                            }
                        }
                    } else if fin {
                        // Peer closed without a (parseable) request.
                        if let Some(WorkerPhase::Reading(timer, job)) = self.busy.remove(&flow) {
                            ctx.cancel_timer(timer);
                            self.jobs.remove(&job);
                            self.free_workers += 1;
                            self.listener.close(flow);
                        } else {
                            self.pending_requests.remove(&flow);
                        }
                    }
                }
                // Queue-pressure events are visible through listener stats;
                // nothing to do here.
                ListenerEvent::SynDropped { .. }
                | ListenerEvent::AckIgnoredQueueFull { .. }
                | ListenerEvent::SolutionRejected { .. }
                | ListenerEvent::AcceptOverflow { .. }
                | ListenerEvent::ResetSent { .. } => {}
            }
        }
        self.dispatch_workers(ctx);
    }

    /// Assigns free workers to queued connections.
    fn dispatch_workers(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        while self.free_workers > 0 {
            let Some(flow) = self.listener.accept() else {
                break;
            };
            self.free_workers -= 1;
            if let Some(size) = self.pending_requests.remove(&flow) {
                self.busy.insert(flow, WorkerPhase::Serving);
                self.arm_service(ctx, flow, size);
            } else {
                let job = self.alloc_job(flow);
                let timer = ctx.set_timer(self.params.read_timeout, tag(K_READTO, job));
                self.busy.insert(flow, WorkerPhase::Reading(timer, job));
            }
        }
    }

    /// Transition a Reading worker to Serving (request arrived).
    fn start_service(&mut self, ctx: &mut Context<'_, TcpSegment>, flow: FlowKey, size: usize) {
        self.busy.insert(flow, WorkerPhase::Serving);
        self.arm_service(ctx, flow, size);
    }

    fn arm_service(&mut self, ctx: &mut Context<'_, TcpSegment>, flow: FlowKey, size: usize) {
        self.serving_size.insert(flow, size);
        let worker_rate = self.params.service_rate / self.params.workers as f64;
        let dur = SimDuration::from_secs_f64(ctx.rng().exp_f64(worker_rate));
        let job = self.alloc_job(flow);
        ctx.set_timer(dur, tag(K_SERVICE, job));
    }
}

impl netsim::Node<TcpSegment> for ServerHost {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
        ctx.set_timer(SimDuration::from_millis(100), tag(K_POLL, 0));
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        _iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        if pkt.payload.dst_port != self.params.port {
            return;
        }
        let out = self.listener.on_segment(ctx.now(), pkt.src, &pkt.payload);
        self.account_crypto(ctx.now());
        self.send_all(ctx, out.replies);
        self.handle_events(ctx, out.events);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, _id: TimerId, t: u64) {
        let now = ctx.now();
        match t >> 56 {
            K_TICK => {
                let secs = now.as_secs_f64();
                let (lq, aq) = self.listener.queue_depths();
                self.metrics.listen_depth.push(secs, lq as f64);
                self.metrics.accept_depth.push(secs, aq as f64);
                self.metrics
                    .busy_workers
                    .push(secs, (self.params.workers - self.free_workers) as f64);
                if now.as_nanos() >= 1_000_000_000 {
                    let from = now.saturating_sub(SimDuration::from_secs(1));
                    self.metrics
                        .cpu_util
                        .push(secs, self.cpu.utilization(from, now));
                    self.cpu
                        .prune_before(now.saturating_sub(SimDuration::from_secs(2)));
                }
                let s = self.listener.stats();
                let p = self.prev_tick_stats;
                self.metrics
                    .challenge_rate
                    .push(secs, (s.challenges_sent - p.challenges_sent) as f64);
                self.metrics
                    .plain_synack_rate
                    .push(secs, (s.synacks_sent - p.synacks_sent) as f64);
                // Closed-loop difficulty control (§7 extension) runs
                // inside the listener's policy tick
                // (`AdaptivePuzzleDefense`); sample the difficulty it
                // holds in force for the metrics series.
                let ps = self.listener.policy_stats();
                if ps.adaptive {
                    if let Some(d) = ps.difficulty {
                        self.metrics.difficulty_m.push(secs, d.m() as f64);
                    }
                }
                self.metrics.peak_defense_state_bytes = self
                    .metrics
                    .peak_defense_state_bytes
                    .max(ps.state_bytes as u64);
                self.prev_tick_stats = s;
                ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
            }
            K_POLL => {
                let retx = self.listener.poll(now);
                self.send_all(ctx, retx);
                ctx.set_timer(SimDuration::from_millis(100), tag(K_POLL, 0));
            }
            K_READTO => {
                if let Some(flow) = self.jobs.remove(&(t & 0x00ff_ffff_ffff_ffff)) {
                    if matches!(self.busy.get(&flow), Some(WorkerPhase::Reading(..))) {
                        self.busy.remove(&flow);
                        self.free_workers += 1;
                        self.metrics.read_timeouts += 1;
                        self.listener.close(flow);
                        self.pending_requests.remove(&flow);
                        self.dispatch_workers(ctx);
                    }
                }
            }
            K_SERVICE => {
                if let Some(flow) = self.jobs.remove(&(t & 0x00ff_ffff_ffff_ffff)) {
                    if matches!(self.busy.get(&flow), Some(WorkerPhase::Serving)) {
                        let size = self.serving_size.remove(&flow).unwrap_or(0);
                        let segs = self.listener.send_data(flow, size, true);
                        self.send_all(ctx, segs);
                        self.busy.remove(&flow);
                        self.free_workers += 1;
                        self.metrics.requests_served += 1;
                        self.metrics.bytes_tx.add(now.as_secs_f64(), size as f64);
                        self.dispatch_workers(ctx);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Parses the demo application's request line: `GET /gettext/<size>`.
/// Returns the requested byte count.
pub fn parse_gettext_request(payload: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(payload).ok()?;
    let rest = text.strip_prefix("GET /gettext/")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing() {
        assert_eq!(parse_gettext_request(b"GET /gettext/10000"), Some(10_000));
        assert_eq!(parse_gettext_request(b"GET /gettext/5 HTTP/1.1"), Some(5));
        assert_eq!(parse_gettext_request(b"GET /other/5"), None);
        assert_eq!(parse_gettext_request(b"GET /gettext/"), None);
        assert_eq!(parse_gettext_request(&[0xff, 0xfe]), None);
    }

    #[test]
    fn established_rate_attribution() {
        let mut m = ServerMetrics::new();
        let a = Ipv4Addr::new(10, 0, 0, 9);
        let b = Ipv4Addr::new(10, 0, 0, 8);
        for i in 0..10 {
            m.established_log.push((i as f64 * 0.5, a));
        }
        m.established_log.push((0.2, b));
        let series = m.established_rate_for(&[a], 1.0);
        assert_eq!(series.total(), 10.0);
        assert_eq!(series.sum_between(0.0, 1.0), 2.0);
        let both = m.established_rate_for(&[a, b], 1.0);
        assert_eq!(both.total(), 11.0);
    }

    #[test]
    fn dead_connection_drain_rate_matches_pool_over_timeout() {
        let p = ServerParams::new(Ipv4Addr::new(10, 0, 0, 1), 80, PolicyBuilder::none());
        let drain = p.workers as f64 / p.read_timeout.as_secs_f64();
        // Slow enough that a backed-up accept queue exceeds client patience.
        assert!((drain - 30.0).abs() < 2.0, "drain {drain}");
    }
}
