//! Host behaviours for the client-puzzles testbed simulation.
//!
//! This crate populates the `netsim` simulator with the actors of the
//! paper's evaluation (§6):
//!
//! * [`ServerHost`] — the victim: a `tcpstack::Listener` with a
//!   worker-pool application service (the apache2 + `gettext/<size>` app),
//!   CPU accounting for puzzle generation/verification, and the metrics
//!   the figures need (throughput, queue depths, per-source established
//!   connections, challenge-vs-plain SYN-ACK sparkline).
//! * [`ClientHost`] — a benign user: Poisson request arrivals, solving or
//!   non-adopting behaviour, CPU-bound solve times from its device
//!   profile, per-request latency/outcome records.
//! * [`AttackerHost`] — the botnet member: spoofed SYN floods, connection
//!   floods (solving or not), replay floods, and bogus-solution floods.
//! * [`Cpu`] / [`profiles`] — hash-rate models calibrated to the paper's
//!   measurements (Fig. 3a commodity CPUs, Table 1 Raspberry Pis, and the
//!   10.8 MH/s server of §7).
//! * [`Host`] — the node enum tying them (plus `netsim::Router`) into one
//!   static dispatch type for the simulator.
//!
//! Solve *time* is modelled (`puzzle_core::SolveCostModel` sampling over
//! the device hash rate); solve *validity* uses either the real
//! brute-force solver or the keyed oracle (`tcpstack::VerifyMode`), as
//! described in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attacker;
mod client;
mod cpu;
pub mod fleet;
mod host;
pub mod mix;
pub mod profiles;
mod server;
mod solve;

pub use attacker::{AttackKind, AttackerHost, AttackerMetrics, AttackerParams};
pub use client::{ClientHost, ClientMetrics, ClientParams, RequestOutcome, SolveBehavior};
pub use cpu::Cpu;
pub use fleet::{
    tsval_newer_eq, BotFleet, BotFleetParams, BotFleetStats, ClientFleet, ClientFleetParams,
    ClientFleetStats, FleetAttack,
};
pub use host::Host;
pub use server::{parse_gettext_request, ServerHost, ServerMetrics, ServerParams};
pub use solve::SolveStrategy;
