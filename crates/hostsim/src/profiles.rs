//! Device performance profiles calibrated to the paper's measurements.
//!
//! The simulation substitutes the paper's physical machines with
//! hash-rate models; these constants are the calibration points:
//!
//! * Figure 3a profiles three commodity Xeon workstations and derives
//!   `w_av = 140,630` hashes in the 400 ms usability budget. The three
//!   rates below average to exactly that.
//! * Table 1 reports the Raspberry Pi fleet's hashing rates, used in
//!   Experiment 6 (IoT botnets).
//! * §7 states the evaluation server performs 10.8 million hashes/second.

/// A named device hash-rate profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Short name used in tables (e.g. `cpu1`, `D1`).
    pub name: &'static str,
    /// Hardware description from the paper.
    pub description: &'static str,
    /// SHA-256 throughput in hashes per second.
    pub hash_rate: f64,
}

impl DeviceProfile {
    /// Hashes this device performs in `budget_secs` seconds (Table 1's
    /// right-hand column uses 0.4 s).
    pub fn hashes_in(&self, budget_secs: f64) -> f64 {
        self.hash_rate * budget_secs
    }
}

/// Figure 3a's client CPUs. Rates are chosen so the 400 ms average equals
/// the paper's `w_av = 140,630` exactly.
pub const CLIENT_CPUS: [DeviceProfile; 3] = [
    DeviceProfile {
        name: "cpu1",
        description: "Intel Xeon E3-1260L quad-core @ 2.4 GHz",
        hash_rate: 375_000.0,
    },
    DeviceProfile {
        name: "cpu2",
        description: "Intel Xeon X3210 quad-core @ 2.13 GHz",
        hash_rate: 330_000.0,
    },
    DeviceProfile {
        name: "cpu3",
        description: "Intel Xeon @ 3 GHz",
        hash_rate: 349_725.0,
    },
];

/// Table 1's IoT devices (average hashing rate column).
pub const IOT_DEVICES: [DeviceProfile; 4] = [
    DeviceProfile {
        name: "D1",
        description: "Raspberry Pi Model B rev 2.0, 700 MHz ARM11",
        hash_rate: 49_617.0,
    },
    DeviceProfile {
        name: "D2",
        description: "Raspberry Pi Zero, 1 GHz ARM11",
        hash_rate: 68_960.0,
    },
    DeviceProfile {
        name: "D3",
        description: "Raspberry Pi 2 Model B v1.1, quad 1.2 GHz Cortex-A53",
        hash_rate: 70_009.0,
    },
    DeviceProfile {
        name: "D4",
        description: "Raspberry Pi 3 Model B v1.2, quad 1.2 GHz BCM2837",
        hash_rate: 74_201.0,
    },
];

/// The evaluation server's hash throughput (§7: "the server used in our
/// experiments can perform 10.8 million hash operations per second").
pub const SERVER_HASH_RATE: f64 = 10_800_000.0;

/// The paper's usability budget (seconds) for solving during an attack.
pub const USABILITY_BUDGET_SECS: f64 = 0.4;

/// The paper's measured average client valuation: hashes in 400 ms,
/// averaged over [`CLIENT_CPUS`] (§4.4).
pub fn wav_reference() -> f64 {
    let sum: f64 = CLIENT_CPUS
        .iter()
        .map(|c| c.hashes_in(USABILITY_BUDGET_SECS))
        .sum();
    sum / CLIENT_CPUS.len() as f64
}

/// The paper's measured server service parameters (§4.4): apache2 plateau
/// rate µ ≈ 1100 req/s and asymptotic per-user capacity α = 1.1.
pub const PAPER_MU: f64 = 1100.0;
/// See [`PAPER_MU`].
pub const PAPER_ALPHA: f64 = 1.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wav_matches_paper() {
        assert!(
            (wav_reference() - 140_630.0).abs() < 0.5,
            "w_av = {}",
            wav_reference()
        );
    }

    #[test]
    fn table1_hashes_in_400ms() {
        // Paper Table 1: D1 performs ~19,901 hashes in 400 ms. Our model
        // gives rate × 0.4 (the paper's own columns differ by < 1%
        // because they profiled bursts rather than steady state).
        let d1 = IOT_DEVICES[0].hashes_in(0.4);
        assert!((d1 - 19_846.8).abs() < 1.0);
        // All IoT devices are far slower than any commodity client CPU.
        for iot in &IOT_DEVICES {
            for cpu in &CLIENT_CPUS {
                assert!(iot.hash_rate < cpu.hash_rate / 4.0);
            }
        }
    }

    #[test]
    fn server_out_hashes_everyone() {
        for d in CLIENT_CPUS.iter().chain(&IOT_DEVICES) {
            assert!(SERVER_HASH_RATE > 10.0 * d.hash_rate);
        }
    }

    #[test]
    fn nash_solve_time_cripples_iot() {
        // At the paper's Nash difficulty (2, 17) a commodity client takes
        // ~0.37 s; the slowest Pi takes ~2.6 s — it cannot flood.
        let ell = 131_072.0;
        let client = ell / CLIENT_CPUS[0].hash_rate;
        let pi = ell / IOT_DEVICES[0].hash_rate;
        assert!(client < 0.5, "client solve {client}");
        assert!(pi > 2.0, "pi solve {pi}");
    }
}
