//! Botnet member behaviours: the paper's attack suite.
//!
//! * **SYN flood** (Experiment 2, first scenario): SYNs from randomized
//!   spoofed sources at a constant rate (`hping3`-style); the handshake is
//!   never completed, so SYN-ACKs die in the network.
//! * **Connection flood** (Experiments 2–5): real-address connection
//!   attempts at a target rate bounded by a concurrency window
//!   (`nping`-style). Optionally solves challenges (the paper's "SA"
//!   solving attacker) at its CPU's hash rate — which is precisely what
//!   rate-limits it.
//! * **Replay flood** (§7): completes one legitimate solving handshake,
//!   captures its own solution ACK, and replays it verbatim.
//! * **Solution flood** (§7): fires forged ACKs with random "solutions"
//!   to burn server verification CPU.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::cpu::Cpu;
use crate::solve::SolveStrategy;
use netsim::{Context, IfaceId, Packet, SimDuration, SimTime, TimerId};
use puzzle_core::ConnectionTuple;
use simmetrics::{IntervalSeries, SampleSeries};
use tcpstack::{
    ClientConfig, ClientConn, ClientEvent, SegmentBuilder, SolutionOption, TcpFlags, TcpOption,
    TcpSegment,
};

const K_START: u64 = 1;
const K_SEND: u64 = 2;
const K_CONNTO: u64 = 3;
const K_SOLVE: u64 = 4;
const K_TICK: u64 = 5;
const K_DELAYACK: u64 = 6;

const fn tag(kind: u64, payload: u64) -> u64 {
    (kind << 56) | payload
}

/// The attack vector this bot executes.
#[derive(Clone, Debug)]
pub enum AttackKind {
    /// Half-open SYN flood with randomized spoofed sources.
    SynFlood {
        /// SYNs per second.
        rate: f64,
        /// Spoof random source addresses (198.18/15) when true; use the
        /// bot's own address otherwise.
        spoof: bool,
    },
    /// Handshake-completing connection flood from the bot's real address.
    ConnFlood {
        /// Target connection attempts per second.
        rate: f64,
        /// `Some(strategy)` for a solving attacker ("SA"); `None` for a
        /// stock flooder that ignores challenges ("NA").
        solve: Option<SolveStrategy>,
        /// Maximum in-flight connection attempts (the tool's socket
        /// window; this is what caps the measured rate in Figs. 13–14).
        concurrency: usize,
        /// Per-attempt give-up timeout.
        conn_timeout: SimDuration,
        /// Delay between receiving a SYN-ACK and sending the completing
        /// ACK. Userspace flood tools lag the kernel fast path; the
        /// paper's own Fig. 10 shows the listen queue *saturated* during
        /// its connection flood, which requires the attacker's half-open
        /// connections to linger — this parameter models that.
        ack_delay: SimDuration,
    },
    /// Captures its own valid solution ACK and replays it.
    ReplayFlood {
        /// Replays per second.
        rate: f64,
        /// Strategy for the single legitimate solve.
        solve: SolveStrategy,
    },
    /// Forged ACKs with random solution bytes (verification-CPU attack).
    SolutionFlood {
        /// Forged ACKs per second.
        rate: f64,
        /// `k` to fake (match the server's difficulty for maximum cost).
        k: u8,
        /// Solution length in bytes (server's `l/8`).
        sol_len: usize,
    },
}

/// Bot configuration.
#[derive(Clone, Debug)]
pub struct AttackerParams {
    /// The bot's own address.
    pub addr: Ipv4Addr,
    /// Victim address.
    pub target_addr: Ipv4Addr,
    /// Victim port.
    pub target_port: u16,
    /// Attack vector.
    pub kind: AttackKind,
    /// The bot's SHA-256 throughput (paper: equal to or better than the
    /// clients').
    pub hash_rate: f64,
    /// Attack start time.
    pub start: SimTime,
    /// Attack stop time.
    pub stop: SimTime,
}

/// What the bot measures about itself.
#[derive(Clone, Debug)]
pub struct AttackerMetrics {
    /// SYN/replay/forged-ACK packets sent per 1 s bin — the "measured
    /// attack rate" of Figs. 13a/14a.
    pub packets_sent: IntervalSeries,
    /// Connections the bot believes it established.
    pub believed_established: u64,
    /// Same, binned per second.
    pub established_series: IntervalSeries,
    /// Challenges solved (solving attackers).
    pub solves: u64,
    /// CPU utilization samples (Fig. 9's attacker curve).
    pub cpu_util: SampleSeries,
    /// RSTs received (deception discovered / conns torn down).
    pub resets: u64,
}

impl AttackerMetrics {
    fn new() -> Self {
        AttackerMetrics {
            packets_sent: IntervalSeries::new(1.0),
            believed_established: 0,
            established_series: IntervalSeries::new(1.0),
            solves: 0,
            cpu_util: SampleSeries::new(),
            resets: 0,
        }
    }
}

struct InFlight {
    conn: ClientConn,
    pending_proofs: Option<Vec<Vec<u8>>>,
    /// ACK held back by the tool's `ack_delay`.
    deferred_ack: Option<TcpSegment>,
}

/// A botnet member.
#[derive(Debug)]
pub struct AttackerHost {
    params: AttackerParams,
    cpu: Cpu,
    metrics: AttackerMetrics,
    in_flight: HashMap<u16, InFlight>,
    next_port: u16,
    /// Captured solution ACK for replay attacks.
    captured: Option<TcpSegment>,
    active: bool,
}

impl std::fmt::Debug for InFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InFlight(..)")
    }
}

impl AttackerHost {
    /// Builds a bot from its parameters.
    pub fn new(params: AttackerParams) -> Self {
        AttackerHost {
            cpu: Cpu::new(params.hash_rate),
            metrics: AttackerMetrics::new(),
            in_flight: HashMap::new(),
            next_port: 20_000,
            captured: None,
            active: false,
            params,
        }
    }

    /// The bot's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.params.addr
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &AttackerMetrics {
        &self.metrics
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = if self.next_port >= 65_000 {
            20_000
        } else {
            self.next_port + 1
        };
        p
    }

    /// Next send delay: mean `1/rate` with ±50% uniform jitter. Without
    /// jitter, identical bots phase-lock into synchronized bursts (their
    /// socket windows all refill at the same instants), leaving periodic
    /// quiet windows no real botnet exhibits.
    fn jittered_interval(rate: f64, rng: &mut netsim::rng::SimRng) -> SimDuration {
        SimDuration::from_secs_f64((0.5 + rng.next_f64()) / rate)
    }

    fn send_from(&mut self, ctx: &mut Context<'_, TcpSegment>, src: Ipv4Addr, seg: TcpSegment) {
        self.metrics.packets_sent.incr(ctx.now().as_secs_f64());
        ctx.send(IfaceId(0), Packet::new(src, self.params.target_addr, seg));
    }

    /// One firing of the attack's send loop.
    fn fire(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let now = ctx.now();
        match self.params.kind.clone() {
            AttackKind::SynFlood { spoof, .. } => {
                let src = if spoof {
                    // RFC 2544 benchmarking space: guaranteed unrouted in
                    // the Fig. 16 topology, like random spoofed sources.
                    Ipv4Addr::new(
                        198,
                        18 + (ctx.rng().below(2) as u8),
                        ctx.rng().below(256) as u8,
                        ctx.rng().below(256) as u8,
                    )
                } else {
                    self.params.addr
                };
                let syn = SegmentBuilder::new(
                    ctx.rng().range_u64(1024, 65_536) as u16,
                    self.params.target_port,
                )
                .seq(ctx.rng().next_u32())
                .flags(TcpFlags::SYN)
                .mss(1460)
                .build();
                self.send_from(ctx, src, syn);
            }
            AttackKind::ConnFlood {
                concurrency,
                conn_timeout,
                ..
            } => {
                if self.in_flight.len() < concurrency {
                    let port = self.alloc_port();
                    let cfg = ClientConfig::new(
                        self.params.addr,
                        port,
                        self.params.target_addr,
                        self.params.target_port,
                    );
                    let isn = ctx.rng().next_u32();
                    let (conn, syn) = ClientConn::connect(cfg, isn, now);
                    self.in_flight.insert(
                        port,
                        InFlight {
                            conn,
                            pending_proofs: None,
                            deferred_ack: None,
                        },
                    );
                    ctx.set_timer(conn_timeout, tag(K_CONNTO, port as u64));
                    self.send_from(ctx, self.params.addr, syn);
                }
            }
            AttackKind::ReplayFlood { .. } => {
                if let Some(seg) = self.captured.clone() {
                    self.send_from(ctx, self.params.addr, seg);
                }
            }
            AttackKind::SolutionFlood { k, sol_len, .. } => {
                let proofs: Vec<Vec<u8>> = (0..k)
                    .map(|_| {
                        let mut p = vec![0u8; sol_len];
                        ctx.rng().fill_bytes(&mut p);
                        p
                    })
                    .collect();
                let sol = SolutionOption::build(1460, 7, &proofs, None);
                let now_ts = tcpstack::puzzle_clock(now);
                let ack = SegmentBuilder::new(
                    ctx.rng().range_u64(1024, 65_536) as u16,
                    self.params.target_port,
                )
                .seq(ctx.rng().next_u32())
                .ack_num(ctx.rng().next_u32())
                .flags(TcpFlags::ACK)
                .timestamps(1, now_ts)
                .option(TcpOption::Solution(sol))
                .build();
                self.send_from(ctx, self.params.addr, ack);
            }
        }
    }

    fn rate(&self) -> f64 {
        match &self.params.kind {
            AttackKind::SynFlood { rate, .. }
            | AttackKind::ConnFlood { rate, .. }
            | AttackKind::ReplayFlood { rate, .. }
            | AttackKind::SolutionFlood { rate, .. } => *rate,
        }
    }

    /// Starts the single legitimate connection a replay attacker uses to
    /// mint its captured solution.
    fn start_capture_conn(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        let port = self.alloc_port();
        let cfg = ClientConfig::new(
            self.params.addr,
            port,
            self.params.target_addr,
            self.params.target_port,
        );
        let isn = ctx.rng().next_u32();
        let (conn, syn) = ClientConn::connect(cfg, isn, ctx.now());
        self.in_flight.insert(
            port,
            InFlight {
                conn,
                pending_proofs: None,
                deferred_ack: None,
            },
        );
        self.send_from(ctx, self.params.addr, syn);
    }

    /// The configured ACK lag for connection floods (zero otherwise).
    fn ack_delay(&self) -> SimDuration {
        match self.params.kind {
            AttackKind::ConnFlood { ack_delay, .. } => ack_delay,
            _ => SimDuration::ZERO,
        }
    }

    fn handle_conn_events(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        port: u16,
        events: Vec<ClientEvent>,
    ) {
        let now = ctx.now();
        for ev in events {
            match ev {
                ClientEvent::Established => {
                    self.metrics.believed_established += 1;
                    self.metrics.established_series.incr(now.as_secs_f64());
                }
                ClientEvent::Challenged {
                    challenge,
                    issued_at,
                } => {
                    let solve = match self.params.kind.clone() {
                        AttackKind::ConnFlood { solve, .. } => solve,
                        AttackKind::ReplayFlood { solve, .. } => Some(solve),
                        _ => None,
                    };
                    match solve {
                        Some(strategy) => {
                            // A solving bot keeps flooding SYNs but its
                            // solver can only keep up with so many
                            // challenges: skip solves whose queueing delay
                            // would outlive the attempt (the connection
                            // would be reaped before the ACK went out).
                            // This is the CPU ceiling the paper measures
                            // in Figs. 13–14 (~2 completions/s per bot).
                            let backlog_limit = match self.params.kind {
                                AttackKind::ConnFlood { conn_timeout, .. } => conn_timeout / 2,
                                _ => SimDuration::from_secs(1),
                            };
                            if self.cpu.busy_until() > now + backlog_limit {
                                continue;
                            }
                            let tuple = ConnectionTuple::new(
                                self.params.addr,
                                port,
                                self.params.target_addr,
                                self.params.target_port,
                                0,
                            );
                            let solved = strategy.solve(&tuple, &challenge, issued_at, ctx.rng());
                            let done = self.cpu.schedule_hashes(now, solved.hashes as f64);
                            if let Some(entry) = self.in_flight.get_mut(&port) {
                                entry.pending_proofs = Some(solved.proofs);
                            }
                            self.metrics.solves += 1;
                            ctx.set_timer(done.since(now), tag(K_SOLVE, port as u64));
                        }
                        None => {
                            // Stock flooder: plain ACK (after the tool's
                            // lag), then holds the deceived connection.
                            let delay = self.ack_delay();
                            if let Some(entry) = self.in_flight.get_mut(&port) {
                                let ack = entry.conn.acknowledge_plain(now);
                                if delay > SimDuration::ZERO {
                                    entry.deferred_ack = Some(ack);
                                    ctx.set_timer(delay, tag(K_DELAYACK, port as u64));
                                } else {
                                    self.send_from(ctx, self.params.addr, ack);
                                }
                                self.metrics.believed_established += 1;
                                self.metrics.established_series.incr(now.as_secs_f64());
                            }
                        }
                    }
                }
                ClientEvent::Reset => {
                    self.metrics.resets += 1;
                    self.in_flight.remove(&port);
                }
                ClientEvent::Data { .. } | ClientEvent::TimedOut => {}
            }
        }
    }
}

impl netsim::Node<TcpSegment> for AttackerHost {
    fn on_start(&mut self, ctx: &mut Context<'_, TcpSegment>) {
        ctx.set_timer(self.params.start.since(SimTime::ZERO), tag(K_START, 0));
        ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, TcpSegment>,
        _iface: IfaceId,
        pkt: Packet<TcpSegment>,
    ) {
        let port = pkt.payload.dst_port;
        let Some(entry) = self.in_flight.get_mut(&port) else {
            return;
        };
        let (reply, events) = entry.conn.on_segment(ctx.now(), &pkt.payload);
        if let Some(seg) = reply {
            // Handshake-completing ACKs honour the tool's lag.
            let delay = self.ack_delay();
            if delay > SimDuration::ZERO && seg.flags.contains(TcpFlags::ACK) {
                if let Some(entry) = self.in_flight.get_mut(&port) {
                    entry.deferred_ack = Some(seg);
                    ctx.set_timer(delay, tag(K_DELAYACK, port as u64));
                }
            } else {
                self.send_from(ctx, self.params.addr, seg);
            }
        }
        self.handle_conn_events(ctx, port, events);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TcpSegment>, _id: TimerId, t: u64) {
        let now = ctx.now();
        let port = (t & 0xffff) as u16;
        match t >> 56 {
            K_START => {
                self.active = true;
                if matches!(self.params.kind, AttackKind::ReplayFlood { .. }) {
                    self.start_capture_conn(ctx);
                }
                let first = Self::jittered_interval(self.rate(), ctx.rng());
                ctx.set_timer(first, tag(K_SEND, 0));
            }
            K_SEND => {
                if now >= self.params.stop {
                    self.active = false;
                    return;
                }
                self.fire(ctx);
                let next = Self::jittered_interval(self.rate(), ctx.rng());
                ctx.set_timer(next, tag(K_SEND, 0));
            }
            K_CONNTO => {
                self.in_flight.remove(&port);
            }
            K_DELAYACK => {
                if let Some(entry) = self.in_flight.get_mut(&port) {
                    if let Some(seg) = entry.deferred_ack.take() {
                        self.send_from(ctx, self.params.addr, seg);
                    }
                }
            }
            K_SOLVE => {
                if let Some(entry) = self.in_flight.get_mut(&port) {
                    if let Some(proofs) = entry.pending_proofs.take() {
                        let ack = entry.conn.provide_solution(now, &proofs);
                        if matches!(self.params.kind, AttackKind::ReplayFlood { .. }) {
                            self.captured = Some(ack.clone());
                        }
                        self.send_from(ctx, self.params.addr, ack);
                        self.metrics.believed_established += 1;
                        self.metrics.established_series.incr(now.as_secs_f64());
                    }
                }
            }
            K_TICK => {
                let secs = now.as_secs_f64();
                if now.as_nanos() >= 1_000_000_000 {
                    let from = now.saturating_sub(SimDuration::from_secs(1));
                    self.metrics
                        .cpu_util
                        .push(secs, self.cpu.utilization(from, now));
                    self.cpu
                        .prune_before(now.saturating_sub(SimDuration::from_secs(2)));
                }
                ctx.set_timer(SimDuration::from_secs(1), tag(K_TICK, 0));
            }
            _ => {}
        }
    }
}
