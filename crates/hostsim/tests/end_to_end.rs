//! End-to-end simulation tests: hosts, stack, and network together.

use std::net::Ipv4Addr;

use hostsim::{
    AttackKind, AttackerHost, AttackerParams, ClientHost, ClientParams, Host, ServerHost,
    ServerParams, SolveBehavior, SolveStrategy,
};
use netsim::{LinkSpec, NetBuilder, NodeId, Route, Router, SimDuration, SimTime, Simulation};
use puzzle_core::{AlgoId, Difficulty, ServerSecret, SolveCostModel};
use puzzle_crypto::AutoBackend;
use tcpstack::{PolicyBuilder, PuzzleConfig, TcpSegment, VerifyMode};

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);

fn client_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 2, 0, 1 + i as u8)
}

fn attacker_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 3, 0, 1 + i as u8)
}

struct World {
    sim: Simulation<TcpSegment, Host>,
    server: NodeId,
    clients: Vec<NodeId>,
    attackers: Vec<NodeId>,
}

/// Star topology: one router in the middle, everything else a leaf.
fn build_world(
    seed: u64,
    server_params: ServerParams,
    clients: Vec<ClientParams>,
    attackers: Vec<AttackerParams>,
) -> World {
    let mut b = NetBuilder::new(seed);
    let router = b.add_node(Host::Router(Router::new()));
    let server = b.add_node(Host::Server(ServerHost::new(server_params)));
    let (r_if_srv, _) = b.connect(router, server, LinkSpec::gigabit());

    let mut routes = vec![(SERVER_IP, r_if_srv)];
    let mut client_ids = Vec::new();
    for params in clients {
        let addr = params.addr;
        let id = b.add_node(Host::Client(ClientHost::new(params)));
        let (r_if, _) = b.connect(router, id, LinkSpec::fast_ethernet());
        routes.push((addr, r_if));
        client_ids.push(id);
    }
    let mut attacker_ids = Vec::new();
    for params in attackers {
        let addr = params.addr;
        let id = b.add_node(Host::Attacker(AttackerHost::new(params)));
        let (r_if, _) = b.connect(router, id, LinkSpec::fast_ethernet());
        routes.push((addr, r_if));
        attacker_ids.push(id);
    }

    let mut sim = b.build();
    let r = sim.node_mut(router).as_router_mut().unwrap();
    for (addr, iface) in routes {
        r.add_route(Route::host(addr, iface));
    }
    World {
        sim,
        server,
        clients: client_ids,
        attackers: attacker_ids,
    }
}

fn secret() -> ServerSecret {
    ServerSecret::from_bytes([0x5e; 32])
}

fn puzzle_defense(k: u8, m: u8, verify: VerifyMode) -> PolicyBuilder<AutoBackend> {
    PolicyBuilder::puzzles(PuzzleConfig {
        difficulty: Difficulty::new(k, m).unwrap(),
        preimage_bits: 32,
        expiry: 8,
        verify,
        hold: SimDuration::from_secs(30),
        verify_workers: 1,
        algo: AlgoId::Prefix,
    })
}

fn oracle() -> SolveStrategy {
    SolveStrategy::Oracle {
        secret: secret(),
        cost_model: SolveCostModel::UniformPlacement,
    }
}

#[test]
fn quiet_network_serves_all_requests() {
    let server = ServerParams::new(SERVER_IP, 80, PolicyBuilder::none());
    let client = ClientParams::new(client_ip(0), SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    let mut w = build_world(1, server, vec![client], vec![]);
    w.sim.run_until(SimTime::from_secs(30));

    let m = w.sim.node(w.clients[0]).as_client().unwrap().metrics();
    assert!(m.started > 400, "~20 req/s for 30 s, got {}", m.started);
    // Almost everything completes (some requests still in flight at cut-off).
    assert!(
        m.completed as f64 >= 0.95 * m.started as f64 - 10.0,
        "completed {} of {}",
        m.completed,
        m.started
    );
    assert_eq!(m.failed, 0, "no failures on a quiet network");
    // Throughput ≈ 20 req/s × 10 kB = 200 kB/s.
    let srv = w.sim.node(w.server).as_server().unwrap().metrics();
    let rate = srv.bytes_tx.mean_rate_between(5.0, 25.0);
    assert!(
        (rate - 200_000.0).abs() < 60_000.0,
        "server app rate {rate} B/s"
    );
}

#[test]
fn syn_flood_kills_undefended_server() {
    let mut server = ServerParams::new(SERVER_IP, 80, PolicyBuilder::none());
    server.backlog = 256;
    let client = ClientParams::new(client_ip(0), SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    let attacker = AttackerParams {
        addr: attacker_ip(0),
        target_addr: SERVER_IP,
        target_port: 80,
        kind: AttackKind::SynFlood {
            rate: 2000.0,
            spoof: true,
        },
        hash_rate: 350_000.0,
        start: SimTime::from_secs(10),
        stop: SimTime::from_secs(40),
    };
    let mut w = build_world(2, server, vec![client], vec![attacker]);
    w.sim.run_until(SimTime::from_secs(50));

    let m = w.sim.node(w.clients[0]).as_client().unwrap().metrics();
    // During the attack the client gets (almost) nothing.
    let during = m.bytes_rx.mean_rate_between(15.0, 35.0);
    let before = m.bytes_rx.mean_rate_between(2.0, 9.0);
    assert!(before > 100_000.0, "healthy before: {before}");
    assert!(
        during < before * 0.2,
        "flooded rate {during} should collapse vs {before}"
    );
    let stats = w.sim.node(w.server).as_server().unwrap().listener_stats();
    assert!(stats.syns_dropped > 1000, "drops: {}", stats.syns_dropped);
}

#[test]
fn syn_flood_with_puzzles_keeps_clients_served() {
    let mut server = ServerParams::new(SERVER_IP, 80, puzzle_defense(1, 8, VerifyMode::Oracle));
    server.backlog = 256;
    let client = ClientParams::new(
        client_ip(0),
        SERVER_IP,
        SolveBehavior::Solve(oracle()),
        350_000.0,
    );
    let attacker = AttackerParams {
        addr: attacker_ip(0),
        target_addr: SERVER_IP,
        target_port: 80,
        kind: AttackKind::SynFlood {
            rate: 2000.0,
            spoof: true,
        },
        hash_rate: 350_000.0,
        start: SimTime::from_secs(10),
        stop: SimTime::from_secs(40),
    };
    let mut w = build_world(3, server, vec![client], vec![attacker]);
    w.sim.run_until(SimTime::from_secs(50));

    let m = w.sim.node(w.clients[0]).as_client().unwrap().metrics();
    let during = m.bytes_rx.mean_rate_between(15.0, 35.0);
    // m=8 puzzles cost ~0.4 ms: throughput stays near nominal (paper Fig. 7).
    assert!(
        during > 120_000.0,
        "puzzled server should keep serving: {during} B/s"
    );
    let stats = w.sim.node(w.server).as_server().unwrap().listener_stats();
    assert!(stats.challenges_sent > 1000);
    assert!(stats.established_puzzle > 50);
}

#[test]
fn connection_flood_beats_cookies_but_not_puzzles() {
    // Returns (client goodput B/s, mean accept depth, mean listen depth)
    // over the attack window — the Fig. 8 + Fig. 10 signatures.
    let run = |defense: PolicyBuilder<AutoBackend>, solve: Option<SolveStrategy>, seed: u64| {
        let mut server = ServerParams::new(SERVER_IP, 80, defense);
        server.backlog = 256;
        server.accept_backlog = 256;
        let client = ClientParams::new(
            client_ip(0),
            SERVER_IP,
            SolveBehavior::Solve(oracle()),
            350_000.0,
        );
        let attackers: Vec<AttackerParams> = (0..3)
            .map(|i| AttackerParams {
                addr: attacker_ip(i),
                target_addr: SERVER_IP,
                target_port: 80,
                kind: AttackKind::ConnFlood {
                    rate: 500.0,
                    solve: solve.clone(),
                    concurrency: 1000,
                    conn_timeout: SimDuration::from_secs(1),
                    ack_delay: SimDuration::from_millis(200),
                },
                hash_rate: 400_000.0,
                start: SimTime::from_secs(10),
                stop: SimTime::from_secs(40),
            })
            .collect();
        let mut w = build_world(seed, server, vec![client], attackers);
        w.sim.run_until(SimTime::from_secs(50));
        let client_rate = w
            .sim
            .node(w.clients[0])
            .as_client()
            .unwrap()
            .metrics()
            .bytes_rx
            .mean_rate_between(15.0, 35.0);
        let srv = w.sim.node(w.server).as_server().unwrap().metrics();
        (
            client_rate,
            srv.accept_depth.mean_between(15.0, 35.0),
            srv.listen_depth.mean_between(15.0, 35.0),
        )
    };

    let (cookie_rate, cookie_accept, cookie_listen) = run(PolicyBuilder::syn_cookies(), None, 4);
    let (puzzle_rate, puzzle_accept, _puzzle_listen) =
        run(puzzle_defense(2, 17, VerifyMode::Oracle), None, 5);

    // Fig. 10 with cookies: both queues saturate.
    assert!(
        cookie_accept > 0.8 * 256.0,
        "cookie accept depth {cookie_accept}"
    );
    assert!(
        cookie_listen > 0.8 * 256.0,
        "cookie listen depth {cookie_listen}"
    );
    // Fig. 10 with challenges: the accept queue stays (almost) empty.
    assert!(
        puzzle_accept < 0.2 * 256.0,
        "puzzle accept depth {puzzle_accept}"
    );
    // Fig. 8: puzzles sustain clearly more client goodput than cookies,
    // and cookies are well below nominal (~200 kB/s).
    assert!(
        puzzle_rate > 1.3 * cookie_rate,
        "cookies {cookie_rate} vs puzzles {puzzle_rate}"
    );
    assert!(
        cookie_rate < 80_000.0,
        "cookies should degrade: {cookie_rate}"
    );
}

#[test]
fn puzzles_throttle_solving_attackers() {
    let mut server = ServerParams::new(SERVER_IP, 80, puzzle_defense(2, 17, VerifyMode::Oracle));
    server.backlog = 0; // puzzles always active: isolate the throttling
    let client = ClientParams::new(
        client_ip(0),
        SERVER_IP,
        SolveBehavior::Solve(oracle()),
        350_000.0,
    );
    let attacker = AttackerParams {
        addr: attacker_ip(0),
        target_addr: SERVER_IP,
        target_port: 80,
        kind: AttackKind::ConnFlood {
            rate: 500.0,
            solve: Some(oracle()),
            concurrency: 100,
            conn_timeout: SimDuration::from_secs(2),
            ack_delay: SimDuration::ZERO,
        },
        hash_rate: 400_000.0,
        start: SimTime::from_secs(5),
        stop: SimTime::from_secs(45),
    };
    let mut w = build_world(6, server, vec![client], vec![attacker]);
    w.sim.run_until(SimTime::from_secs(50));

    // A solving attacker at 400 kH/s takes ~0.33 s per (2,17) puzzle:
    // its established rate is CPU-capped at ~3/s, not its 500 pps target.
    let srv = w.sim.node(w.server).as_server().unwrap();
    let est = srv
        .metrics()
        .established_rate_for(&[attacker_ip(0)], 1.0)
        .mean_rate_between(10.0, 40.0);
    assert!(est > 0.2, "solving attacker does get through: {est}");
    assert!(est < 10.0, "but rate-limited by its CPU: {est} cps");

    let att = w.sim.node(w.attackers[0]).as_attacker().unwrap().metrics();
    assert!(att.solves > 20, "attacker solved: {}", att.solves);
    // Its CPU is saturated while solving (Fig. 9's attacker spike).
    let cpu = att.cpu_util.mean_between(10.0, 40.0);
    assert!(cpu > 0.5, "attacker CPU {cpu}");
}

#[test]
fn deterministic_across_identical_runs() {
    let build = || {
        let server = ServerParams::new(SERVER_IP, 80, puzzle_defense(1, 6, VerifyMode::Oracle));
        let client = ClientParams::new(
            client_ip(0),
            SERVER_IP,
            SolveBehavior::Solve(oracle()),
            350_000.0,
        );
        build_world(42, server, vec![client], vec![])
    };
    let mut a = build();
    let mut b = build();
    a.sim.run_until(SimTime::from_secs(20));
    b.sim.run_until(SimTime::from_secs(20));
    let ma = a.sim.node(a.clients[0]).as_client().unwrap().metrics();
    let mb = b.sim.node(b.clients[0]).as_client().unwrap().metrics();
    assert_eq!(ma.started, mb.started);
    assert_eq!(ma.completed, mb.completed);
    assert_eq!(ma.bytes_rx, mb.bytes_rx);
    assert_eq!(a.sim.stats(), b.sim.stats());
}

#[test]
fn real_verify_mode_full_protocol_small_difficulty() {
    // The complete path with genuine brute-force solving (m = 6).
    let mut server = ServerParams::new(SERVER_IP, 80, puzzle_defense(2, 6, VerifyMode::Real));
    server.backlog = 0; // force challenges on every SYN
    let client = ClientParams::new(
        client_ip(0),
        SERVER_IP,
        SolveBehavior::Solve(SolveStrategy::Real),
        350_000.0,
    );
    let filler = ClientParams::new(client_ip(1), SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    let mut w = build_world(7, server, vec![client, filler], vec![]);
    w.sim.run_until(SimTime::from_secs(10));

    let stats = w.sim.node(w.server).as_server().unwrap().listener_stats();
    assert!(
        stats.challenges_sent > 10,
        "challenges: {}",
        stats.challenges_sent
    );
    assert!(
        stats.established_puzzle > 10,
        "real-solved establishments: {}",
        stats.established_puzzle
    );
    assert_eq!(stats.verify_failures, 0);
}

#[test]
fn replay_flood_is_contained() {
    let mut server = ServerParams::new(SERVER_IP, 80, puzzle_defense(1, 8, VerifyMode::Oracle));
    server.backlog = 0; // puzzles always on
    let attacker = AttackerParams {
        addr: attacker_ip(0),
        target_addr: SERVER_IP,
        target_port: 80,
        kind: AttackKind::ReplayFlood {
            rate: 200.0,
            solve: oracle(),
        },
        hash_rate: 400_000.0,
        start: SimTime::from_secs(2),
        stop: SimTime::from_secs(70),
    };
    let filler = ClientParams::new(client_ip(0), SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    let mut w = build_world(8, server, vec![filler], vec![attacker]);
    w.sim.run_until(SimTime::from_secs(75));

    let srv = w.sim.node(w.server).as_server().unwrap();
    let stats = srv.listener_stats();
    // While the (single) replayed connection is parked server-side, the
    // replays are inert duplicates; after each idle reap the stale
    // solution re-admits only while inside its 8 s window — beyond that
    // every replay is rejected as expired (§5, §7).
    assert!(
        stats.verify_expired > 1000,
        "expired: {}",
        stats.verify_expired
    );
    let est = srv.metrics().established_rate_for(&[attacker_ip(0)], 1.0);
    // A replayed solution occupies at most one connection slot at a time:
    // total admissions over 70 s stay bounded by the expiry window over
    // the server's idle-turnover period.
    assert!(est.total() < 15.0, "replay admissions {}", est.total());
}

#[test]
fn solution_flood_burns_bounded_server_cpu() {
    let mut server = ServerParams::new(SERVER_IP, 80, puzzle_defense(2, 17, VerifyMode::Oracle));
    server.backlog = 0;
    let attacker = AttackerParams {
        addr: attacker_ip(0),
        target_addr: SERVER_IP,
        target_port: 80,
        kind: AttackKind::SolutionFlood {
            rate: 2000.0,
            k: 2,
            sol_len: 4,
        },
        hash_rate: 400_000.0,
        start: SimTime::from_secs(2),
        stop: SimTime::from_secs(20),
    };
    let filler = ClientParams::new(client_ip(0), SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    let mut w = build_world(9, server, vec![filler], vec![attacker]);
    w.sim.run_until(SimTime::from_secs(25));

    let srv = w.sim.node(w.server).as_server().unwrap();
    let stats = srv.listener_stats();
    assert!(
        stats.verify_failures > 10_000,
        "failures: {}",
        stats.verify_failures
    );
    assert_eq!(stats.established_puzzle, 0, "forgeries never admitted");
    // §7: verification is ~2 hashes at 10.8 MH/s — 2000 pps is nothing.
    let cpu = srv.metrics().cpu_util.max_between(3.0, 20.0);
    assert!(cpu < 0.05, "server CPU under solution flood: {cpu}");
}
