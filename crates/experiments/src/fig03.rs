//! Figure 3: performance profiles — (a) client hash rates → `w_av`,
//! (b) server stress test → µ and α.
//!
//! Part (a) is reproduced from the calibrated device profiles (the
//! simulation's substitute for profiling physical Xeons); part (b) runs an
//! `ab`-style closed-loop stress client against the simulated server and
//! measures the service-rate plateau, exactly following §4.3.

use std::fmt;

use hostsim::{profiles, ClientHost, ClientParams, Host, ServerHost, ServerParams, SolveBehavior};
use netsim::{LinkSpec, NetBuilder, Route, Router, SimDuration, SimTime};
use puzzle_game::profile::ServiceCurve;
use simmetrics::Table;
use tcpstack::PolicyBuilder;

use crate::scenario::{SERVER_IP, SERVER_PORT};

/// One row of the Fig. 3a profile table.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// Device name.
    pub name: &'static str,
    /// Hash rate (H/s).
    pub hash_rate: f64,
    /// Hashes achievable in the 400 ms usability budget.
    pub hashes_400ms: f64,
}

/// One row of the Fig. 3b stress curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StressRow {
    /// Concurrent in-flight requests.
    pub concurrency: usize,
    /// Observed service rate (requests/s).
    pub service_rate: f64,
    /// Service parameter α = rate / concurrency.
    pub alpha: f64,
}

/// The full Figure 3 result.
#[derive(Clone, Debug)]
pub struct Fig03Result {
    /// Fig. 3a rows.
    pub profiles: Vec<ProfileRow>,
    /// Average client valuation `w_av` (hashes per 400 ms).
    pub wav: f64,
    /// Fig. 3b rows.
    pub stress: Vec<StressRow>,
    /// Plateau service rate µ.
    pub mu: f64,
    /// Asymptotic service parameter α.
    pub alpha: f64,
}

/// Reproduces Fig. 3a from the calibrated profiles.
pub fn client_profiles() -> (Vec<ProfileRow>, f64) {
    let rows: Vec<ProfileRow> = profiles::CLIENT_CPUS
        .iter()
        .map(|p| ProfileRow {
            name: p.name,
            hash_rate: p.hash_rate,
            hashes_400ms: p.hashes_in(profiles::USABILITY_BUDGET_SECS),
        })
        .collect();
    let wav = rows.iter().map(|r| r.hashes_400ms).sum::<f64>() / rows.len() as f64;
    (rows, wav)
}

/// Runs the Fig. 3b stress test: a closed-loop client at each concurrency
/// level, measuring the steady-state service rate.
pub fn stress_test(seed: u64, concurrencies: &[usize], measure_secs: f64) -> Vec<StressRow> {
    concurrencies
        .iter()
        .map(|&c| {
            let rate = run_stress_point(seed, c, measure_secs);
            StressRow {
                concurrency: c,
                service_rate: rate,
                alpha: rate / c as f64,
            }
        })
        .collect()
}

fn run_stress_point(seed: u64, concurrency: usize, measure_secs: f64) -> f64 {
    // Dedicated mini-topology: gigabit client link so the network never
    // bottlenecks the stress test (ab runs on a LAN next to the server).
    let mut b = NetBuilder::new(seed);
    let router = b.add_node(Host::Router(Router::new()));
    let server = ServerParams::new(SERVER_IP, SERVER_PORT, PolicyBuilder::none());
    let server_id = b.add_node(Host::Server(ServerHost::new(server)));
    let (r_to_srv, _) = b.connect(router, server_id, LinkSpec::gigabit());

    let client_ip = "10.9.0.1".parse().expect("static address");
    let mut params = ClientParams::new(client_ip, SERVER_IP, SolveBehavior::Ignore, 350_000.0);
    params.closed_loop = Some(concurrency);
    params.request_size = 1_000; // ab-style small page
    params.request_timeout = SimDuration::from_secs(60);
    let client_id = b.add_node(Host::Client(ClientHost::new(params)));
    let (r_to_cl, _) = b.connect(router, client_id, LinkSpec::gigabit());

    let mut sim = b.build();
    let r = sim.node_mut(router).as_router_mut().expect("router");
    r.add_route(Route::host(SERVER_IP, r_to_srv));
    r.add_route(Route::host(client_ip, r_to_cl));

    // Warm up, then measure completions per second.
    let warmup = 3.0;
    sim.run_until(SimTime::from_secs_f64(warmup + measure_secs));
    let client = sim.node(client_id).as_client().expect("client");
    client
        .metrics()
        .completions
        .sum_between(warmup, warmup + measure_secs)
        / measure_secs
}

/// Runs the full Figure 3 reproduction.
pub fn run(seed: u64, full: bool) -> Fig03Result {
    let _ = seed; // profiles are deterministic; the stress sim uses a fixed seed
    let (rows, wav) = client_profiles();
    let concurrencies: &[usize] = if full {
        &[1, 5, 10, 25, 50, 100, 200, 400, 600, 800, 1000]
    } else {
        &[1, 10, 50, 200, 600, 1000]
    };
    let measure = if full { 30.0 } else { 10.0 };
    let stress = stress_test(1, concurrencies, measure);

    let mut curve = ServiceCurve::new();
    for row in &stress {
        curve.push(row.concurrency as f64, row.service_rate.max(1e-9));
    }
    Fig03Result {
        profiles: rows,
        wav,
        mu: curve.mu(),
        alpha: curve.alpha(),
        stress,
    }
}

impl fmt::Display for Fig03Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3a — client performance profiles")?;
        let mut t = Table::new(vec!["device", "hash rate (H/s)", "hashes in 400 ms"]);
        for r in &self.profiles {
            t.row(vec![
                r.name.into(),
                format!("{:.0}", r.hash_rate),
                format!("{:.0}", r.hashes_400ms),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(f, "w_av = {:.0}   (paper: 140630)\n", self.wav)?;

        writeln!(f, "Figure 3b — server stress test")?;
        let mut t = Table::new(vec!["concurrency", "service rate (req/s)", "alpha"]);
        for r in &self.stress {
            t.row(vec![
                r.concurrency.to_string(),
                format!("{:.0}", r.service_rate),
                format!("{:.2}", r.alpha),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "mu = {:.0} req/s (paper: ~1100), alpha -> {:.2} (paper: 1.1)",
            self.mu, self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_wav() {
        let (rows, wav) = client_profiles();
        assert_eq!(rows.len(), 3);
        assert!((wav - 140_630.0).abs() < 1.0, "wav {wav}");
    }

    #[test]
    fn stress_rate_plateaus_near_mu() {
        let stress = stress_test(3, &[50, 400], 8.0);
        // At high concurrency the plateau approaches µ = 1100 req/s.
        let high = stress.last().unwrap();
        assert!(
            (high.service_rate - 1100.0).abs() < 200.0,
            "plateau {:.0}",
            high.service_rate
        );
        // α decreases with concurrency (Fig. 3b shape).
        assert!(stress[0].alpha > high.alpha);
    }

    #[test]
    fn display_includes_reference_values() {
        let r = Fig03Result {
            profiles: client_profiles().0,
            wav: 140_630.0,
            stress: vec![StressRow {
                concurrency: 1000,
                service_rate: 1100.0,
                alpha: 1.1,
            }],
            mu: 1100.0,
            alpha: 1.1,
        };
        let s = r.to_string();
        assert!(s.contains("140630"));
        assert!(s.contains("cpu1"));
        assert!(s.contains("alpha"));
    }
}
