//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each `figXX` / `tableX` module reproduces one evaluation artifact of
//! Noureddine et al. (DSN 2019) on the simulated testbed and returns a
//! structured result that renders to the same rows/series the paper
//! reports, alongside the paper's reference values. The corresponding
//! binaries (`src/bin/figXX_*.rs`) print those tables; pass `--full` for
//! the paper's original 600 s timeline instead of the time-compressed
//! default.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig03`] | Fig. 3: client hash profiles (`w_av`) and server stress test (µ, α) |
//! | [`fig06`] | Fig. 6: CDF of connection time across `(k, m)` |
//! | [`fig07`] | Fig. 7: throughput during a SYN flood |
//! | [`fig08`] | Fig. 8: throughput during a connection flood |
//! | [`fig09`] | Fig. 9: CPU utilization during a connection flood |
//! | [`fig10`] | Fig. 10: listen/accept queue sizes |
//! | [`fig11`] | Fig. 11: attackers' established-connection rate |
//! | [`fig12`] | Fig. 12: client throughput across difficulty settings |
//! | [`fig13`] | Fig. 13: per-node attack-rate sweep |
//! | [`fig14`] | Fig. 14: botnet-size sweep |
//! | [`fig15`] | Fig. 15: partial-adoption scenarios |
//! | [`table1`] | Table 1: IoT device profiles + flood capability |
//! | [`solution_flood`] | §7 solution-flood resistance analysis |
//! | [`nash`] | §4.4 equilibrium-difficulty worked example |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod fig03;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod golden;
pub mod nash;
pub mod scenario;
pub mod solution_flood;
pub mod table1;

pub use scenario::{Matrix, MatrixCell, Scenario, Testbed, Timeline};

/// Returns the value following flag `name` in `args` — the shared
/// `--flag VALUE` parsing of the `fig*`/`matrix_sweep` binaries.
pub fn arg_after<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
}

/// Prints (to stderr, so piped table output stays clean) which hash
/// backend this process verifies puzzles through, making every committed
/// experiment number attributable to the engine that produced it. Every
/// `fig*`/`table*` binary calls this at startup.
pub fn report_backend() {
    use puzzle_crypto::HashBackend;
    eprintln!(
        "hash backend: {} (override with PUZZLE_BACKEND=scalar|multilane|shani)",
        puzzle_crypto::auto_backend().name()
    );
}
