//! Golden-run scenarios and digests: the regression anchor for the
//! simulation engine.
//!
//! A *golden run* is a small, seeded instance of one of the standard
//! experiment scenarios (the fig03 baseline load, the fig07 SYN flood,
//! the fig08 connection flood) reduced to a single SHA-256 digest over
//! every observable the figures read: per-client counters, the goodput
//! trace, listener counters, attacker self-measurements, and the
//! engine's own event statistics. The digests are committed in
//! `tests/golden_runs.rs`; any change to event ordering, RNG draw
//! order, or protocol behaviour shows up as a digest mismatch.
//!
//! This is what licensed the event-queue swap (BinaryHeap → hierarchical
//! timer wheel): the digests were captured under the heap engine and the
//! wheel engine must reproduce them byte-for-byte. They are also
//! asserted identical across all three hash backends (`PUZZLE_BACKEND`
//! CI matrix) — verification is digest-identical by contract, so the
//! backend must never leak into simulation results.

use std::fmt::Write as _;

use crate::scenario::{DefenseSpec, Scenario, Testbed, Timeline};

/// The golden timeline: short enough for CI, long enough that the
/// attack window shapes the trace.
pub fn golden_timeline() -> Timeline {
    Timeline {
        total: 20.0,
        attack_start: 4.0,
        attack_stop: 16.0,
    }
}

/// The fig03-style baseline: solving clients under the Nash defence,
/// no attack.
pub fn standard_scenario(seed: u64) -> Scenario {
    let timeline = golden_timeline();
    let mut s = Scenario::standard(seed, DefenseSpec::nash(), &timeline);
    s.clients.truncate(5);
    s
}

/// The fig07-style golden run under an arbitrary defence spec: spoofed
/// SYN flood against 5 solving clients.
pub fn defended_syn_flood_scenario(seed: u64, defense: DefenseSpec) -> Scenario {
    let timeline = golden_timeline();
    let mut s = Scenario::standard(seed, defense, &timeline);
    s.clients.truncate(5);
    s.attackers = Scenario::syn_flood_bots(3, 800.0, &timeline);
    s
}

/// The fig08-style golden run under an arbitrary defence spec:
/// non-solving connection flood against 5 solving clients.
pub fn defended_conn_flood_scenario(seed: u64, defense: DefenseSpec) -> Scenario {
    let timeline = golden_timeline();
    let mut s = Scenario::standard(seed, defense, &timeline);
    s.clients.truncate(5);
    s.attackers = Scenario::conn_flood_bots(3, 300.0, false, &timeline);
    s
}

/// The fig07-style golden run: spoofed SYN flood against Nash puzzles.
pub fn syn_flood_scenario(seed: u64) -> Scenario {
    defended_syn_flood_scenario(seed, DefenseSpec::nash())
}

/// The fig08-style golden run: non-solving connection flood against
/// Nash puzzles.
pub fn conn_flood_scenario(seed: u64) -> Scenario {
    defended_conn_flood_scenario(seed, DefenseSpec::nash())
}

/// Reconfigures a golden scenario's server to run `shards` RSS-style
/// listener shards — how the CI backend matrix re-runs the defense
/// suite at `shards = 4`. At `shards = 1` the scenario is unchanged
/// (the sharded facade is a transparent wrapper), so the pre-sharding
/// digests pin that case directly.
pub fn sharded(mut scenario: Scenario, shards: usize) -> Scenario {
    scenario.server.shards = shards;
    scenario
}

/// [`sharded`] with an explicit step pipeline. The golden invariant
/// this enables: the persistent-worker pipeline must reproduce the
/// `shards = 4` pins byte-for-byte on *any* host — the pipeline decides
/// where the stepping runs, never what it produces — so the suite can
/// force `ShardPipeline::Persistent` even on a single-core runner,
/// where `Auto` would fall back to in-line stepping and prove nothing
/// about the workers.
pub fn sharded_pipeline(
    mut scenario: Scenario,
    shards: usize,
    pipeline: tcpstack::ShardPipeline,
) -> Scenario {
    scenario.server.shards = shards;
    scenario.server.pipeline = pipeline;
    scenario
}

/// Runs a scenario to the golden timeline's end and digests it.
pub fn run_and_digest(scenario: Scenario) -> String {
    let timeline = golden_timeline();
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);
    digest_testbed(&tb)
}

/// Reduces a finished testbed to a hex SHA-256 digest over everything
/// the figures measure. Any behavioural drift — event ordering, RNG
/// draw order, protocol logic, queue admission — changes this string.
pub fn digest_testbed(tb: &Testbed) -> String {
    let mut t = String::new();
    for c in tb.clients() {
        let m = c.metrics();
        let _ = writeln!(
            t,
            "client {} started={} established={} completed={} failed={} solves={}",
            c.addr(),
            m.started,
            m.established,
            m.completed,
            m.failed,
            m.solves
        );
    }
    let _ = writeln!(t, "goodput {:?}", tb.client_goodput().rates());
    let _ = writeln!(t, "listener {:?}", tb.server().listener_stats());
    let sm = tb.server_metrics();
    let _ = writeln!(
        t,
        "server served={} read_timeouts={} established={}",
        sm.requests_served,
        sm.read_timeouts,
        sm.established_log.len()
    );
    for a in tb.attackers() {
        let m = a.metrics();
        let _ = writeln!(
            t,
            "attacker {} sent={} believed={} solves={} resets={}",
            a.addr(),
            m.packets_sent.total(),
            m.believed_established,
            m.solves,
            m.resets
        );
    }
    for f in tb.bot_fleets() {
        let _ = writeln!(t, "bot-fleet {} {:?}", f.addr_base(), f.stats());
    }
    for f in tb.client_fleets() {
        let _ = writeln!(t, "client-fleet {} {:?}", f.addr_base(), f.stats());
    }
    let _ = writeln!(t, "sim {:?}", tb.sim.stats());
    puzzle_crypto::hex::encode(puzzle_crypto::sha256(t.as_bytes()).as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_hex_sha256() {
        let timeline = golden_timeline();
        assert!(timeline.attack_stop < timeline.total);
        let mut s = standard_scenario(3);
        s.clients.truncate(1);
        let d = run_and_digest(s);
        assert_eq!(d.len(), 64);
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
