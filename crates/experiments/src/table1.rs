//! Table 1: IoT (Raspberry Pi) performance profiles and what they imply
//! for flood capability under Nash puzzles (Experiment 6).

use std::fmt;

use hostsim::profiles::{DeviceProfile, CLIENT_CPUS, IOT_DEVICES, USABILITY_BUDGET_SECS};
use netsim::SimDuration;
use puzzle_core::Difficulty;
use simmetrics::Table;

use crate::scenario::{oracle_strategy, DefenseSpec, Scenario, Timeline, SERVER_IP, SERVER_PORT};
use hostsim::{AttackKind, AttackerParams};
use netsim::SimTime;

/// One device row.
#[derive(Clone, Debug)]
pub struct IotRow {
    /// The device profile.
    pub device: DeviceProfile,
    /// Hashes the device performs in 400 ms (the paper's right column).
    pub hashes_400ms: f64,
    /// Expected seconds to solve one Nash puzzle.
    pub nash_solve_secs: f64,
    /// Implied ceiling on the device's connection-flood rate (cps).
    pub max_flood_cps: f64,
}

/// The full Table 1 result, plus a small confirmation simulation.
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// One row per Raspberry Pi device.
    pub rows: Vec<IotRow>,
    /// A commodity client's Nash solve time, for contrast.
    pub commodity_solve_secs: f64,
    /// Measured effective rate of a 4-Pi botnet against the Nash server
    /// (cps), from the confirmation simulation.
    pub simulated_botnet_cps: f64,
}

/// Computes the profile rows.
pub fn rows(difficulty: Difficulty) -> Vec<IotRow> {
    IOT_DEVICES
        .iter()
        .map(|d| {
            let solve = difficulty.expected_client_hashes() / d.hash_rate;
            IotRow {
                device: *d,
                hashes_400ms: d.hashes_in(USABILITY_BUDGET_SECS),
                nash_solve_secs: solve,
                max_flood_cps: 1.0 / solve,
            }
        })
        .collect()
}

/// Runs Table 1 plus the confirmation simulation: a 4-Pi solving botnet
/// flooding the Nash-defended server.
pub fn run(seed: u64, full: bool) -> Table1Result {
    let difficulty = Difficulty::new(2, 17).expect("nash difficulty");
    let rows = rows(difficulty);
    let commodity = difficulty.expected_client_hashes() / CLIENT_CPUS[0].hash_rate;

    let timeline = if full {
        Timeline::quick()
    } else {
        Timeline::smoke()
    };
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), &timeline);
    scenario.attackers = IOT_DEVICES
        .iter()
        .enumerate()
        .map(|(i, d)| AttackerParams {
            addr: crate::scenario::attacker_addr(i),
            target_addr: SERVER_IP,
            target_port: SERVER_PORT,
            kind: AttackKind::ConnFlood {
                rate: 500.0,
                solve: Some(oracle_strategy()),
                concurrency: 256,
                conn_timeout: SimDuration::from_secs(1),
                ack_delay: SimDuration::from_millis(500),
            },
            hash_rate: d.hash_rate,
            start: SimTime::from_secs_f64(timeline.attack_start),
            stop: SimTime::from_secs_f64(timeline.attack_stop),
        })
        .collect();
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);
    let (a0, a1) = timeline.attack_window();
    let cps = tb
        .server_metrics()
        .established_rate_for(tb.attacker_addrs(), 1.0)
        .mean_rate_between(a0, a1);

    Table1Result {
        rows,
        commodity_solve_secs: commodity,
        simulated_botnet_cps: cps,
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1 — IoT device performance profiles")?;
        let mut t = Table::new(vec![
            "device",
            "hash rate (H/s)",
            "hashes in 400 ms",
            "Nash solve (s)",
            "max flood (cps)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.device.name.into(),
                format!("{:.0}", r.device.hash_rate),
                format!("{:.0}", r.hashes_400ms),
                format!("{:.2}", r.nash_solve_secs),
                format!("{:.2}", r.max_flood_cps),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "commodity client solves the same puzzle in {:.2} s;\n\
             simulated 4-Pi botnet effective rate: {:.2} cps\n\
             paper reference rates: D1 49617, D2 68960, D3 70009, D4 74201 H/s;\n\
             'their ability to launch a flood of connections is limited'",
            self.commodity_solve_secs, self.simulated_botnet_cps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_and_budget_column() {
        let difficulty = Difficulty::new(2, 17).unwrap();
        let rows = rows(difficulty);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].device.name, "D1");
        assert!((rows[0].device.hash_rate - 49_617.0).abs() < 1.0);
        // 400 ms column ≈ 0.4 × rate (paper: 19901 for D1).
        assert!((rows[0].hashes_400ms - 19_846.8).abs() < 1.0);
        // Every Pi needs > 1.7 s per Nash puzzle: flooding is hopeless.
        for r in &rows {
            assert!(
                r.nash_solve_secs > 1.7,
                "{}: {:.2}s",
                r.device.name,
                r.nash_solve_secs
            );
            assert!(r.max_flood_cps < 0.6);
        }
    }

    #[test]
    fn iot_botnet_is_crippled_in_simulation() {
        let r = run(111, false);
        // 4 Pis, each < 0.6 cps of solving: the aggregate stays small
        // (openings contribute a few unchallenged completions).
        assert!(
            r.simulated_botnet_cps < 12.0,
            "botnet cps {:.2}",
            r.simulated_botnet_cps
        );
        assert!(r.commodity_solve_secs < 0.5);
    }
}
