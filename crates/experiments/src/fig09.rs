//! Figure 9: CPU utilization of client, server, and attacker machines
//! during a connection flood with Nash puzzles.
//!
//! Shape targets (paper): the server stays below ~5% (generation +
//! verification are cheap); clients rise to ~10% (solving for their own
//! requests); solving attackers spike toward saturation — the CPU cost is
//! successfully shifted onto the flooders.

use std::fmt;

use simmetrics::Table;

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// Utilization summary for one population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuRow {
    /// Mean utilization during the attack (0–1).
    pub mean: f64,
    /// Maximum 1 s utilization sample during the attack (0–1).
    pub max: f64,
}

/// The full Figure 9 result.
#[derive(Clone, Debug)]
pub struct Fig09Result {
    /// Server CPU.
    pub server: CpuRow,
    /// Client CPU (averaged across clients).
    pub clients: CpuRow,
    /// Attacker CPU (averaged across bots).
    pub attackers: CpuRow,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Runs the Figure 9 measurement.
pub fn run(seed: u64, full: bool) -> Fig09Result {
    run_with(seed, Timeline::from_full_flag(full), 10, 500.0)
}

/// Parameterized variant.
pub fn run_with(seed: u64, timeline: Timeline, bots: usize, rate: f64) -> Fig09Result {
    // Solving attackers: the paper's Fig. 9 attacker curve shows heavy
    // solving load (up to ~60%).
    let attackers = Scenario::conn_flood_bots(bots, rate, true, &timeline);
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), &timeline);
    scenario.attackers = attackers;
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);

    let (a0, a1) = timeline.attack_window();
    let server = CpuRow {
        mean: tb.server_metrics().cpu_util.mean_between(a0, a1),
        max: tb.server_metrics().cpu_util.max_between(a0, a1),
    };
    let avg = |means: Vec<(f64, f64)>| -> CpuRow {
        let n = means.len().max(1) as f64;
        CpuRow {
            mean: means.iter().map(|(m, _)| m).sum::<f64>() / n,
            max: means.iter().map(|(_, x)| *x).fold(0.0, f64::max),
        }
    };
    let clients = avg(tb
        .clients()
        .map(|c| {
            (
                c.metrics().cpu_util.mean_between(a0, a1),
                c.metrics().cpu_util.max_between(a0, a1),
            )
        })
        .collect());
    let attackers = avg(tb
        .attackers()
        .map(|a| {
            (
                a.metrics().cpu_util.mean_between(a0, a1),
                a.metrics().cpu_util.max_between(a0, a1),
            )
        })
        .collect());
    Fig09Result {
        server,
        clients,
        attackers,
        timeline,
    }
}

impl fmt::Display for Fig09Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9 — CPU utilization during connection flood (Nash puzzles)"
        )?;
        let mut t = Table::new(vec!["population", "mean util", "max util"]);
        for (name, row) in [
            ("server", self.server),
            ("clients", self.clients),
            ("attackers", self.attackers),
        ] {
            t.row(vec![
                name.into(),
                format!("{:.1}%", row.mean * 100.0),
                format!("{:.1}%", row.max * 100.0),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: server < 5%, clients ~10% (max < 20%), attackers up to ~60%"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_cost_lands_on_solvers_not_the_server() {
        let r = run_with(41, Timeline::smoke(), 3, 500.0);
        // Server verification stays negligible (paper: < 5%).
        assert!(r.server.max < 0.05, "server {:.3}", r.server.max);
        // Both solving populations pay real CPU; the server does not.
        assert!(
            r.clients.mean > 10.0 * r.server.mean.max(0.001),
            "clients {:.3} vs server {:.3}",
            r.clients.mean,
            r.server.mean
        );
        assert!(r.attackers.mean > 0.3, "attackers {:.3}", r.attackers.mean);
        // Note: the paper shows clients at ~10% because its Fig. 6/9
        // latencies imply kernel-speed hashing; at the Fig. 3a userspace
        // calibration a 20 req/s client saturates its solver — see
        // EXPERIMENTS.md.
    }
}
