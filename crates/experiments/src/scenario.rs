//! The experiment testbed: the paper's Figure 16 topology plus parameter
//! presets matching §6's setup.
//!
//! Topology: three fully meshed backbone routers on 1 Gbps links; the
//! server hangs off router 0 on a 1 Gbps link; clients and attackers are
//! spread round-robin across routers 1 and 2 on 100 Mbps links.

use std::fmt;
use std::net::Ipv4Addr;

use hostsim::{
    AttackKind, AttackerHost, AttackerParams, BotFleet, BotFleetParams, ClientFleet,
    ClientFleetParams, ClientHost, ClientParams, FleetAttack, Host, ServerHost, ServerMetrics,
    ServerParams, SolveBehavior, SolveStrategy,
};
use netsim::{LinkSpec, NetBuilder, NodeId, Route, Router, SimDuration, SimTime, Simulation};
use puzzle_core::{AlgoId, Difficulty, ServerSecret, SolveCostModel};
use puzzle_crypto::AutoBackend;
use simmetrics::IntervalSeries;
use tcpstack::adaptive::AdaptiveDifficulty;
use tcpstack::{PolicyBuilder, PuzzleConfig, SynCacheConfig, TcpSegment, VerifyMode};

/// The server's address in every scenario.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
/// The server's port in every scenario.
pub const SERVER_PORT: u16 = 80;

/// The shared scenario secret (the simulation oracle needs the scenario
/// to hand the same secret to server and solving hosts).
pub fn scenario_secret() -> ServerSecret {
    ServerSecret::from_bytes([0x5e; 32])
}

/// The oracle solve strategy under the scenario secret, with the paper's
/// uniform-placement cost model.
pub fn oracle_strategy() -> SolveStrategy {
    SolveStrategy::Oracle {
        secret: scenario_secret(),
        cost_model: SolveCostModel::UniformPlacement,
    }
}

/// Address of client `i`.
pub fn client_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 2, (i / 250) as u8, (1 + i % 250) as u8)
}

/// Address of attacker `i`.
pub fn attacker_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 3, (i / 250) as u8, (1 + i % 250) as u8)
}

/// Base of bot-fleet `i`'s `/16` source block.
pub fn bot_fleet_base(i: usize) -> Ipv4Addr {
    assert!(i < 64, "bot fleet index {i} out of range");
    Ipv4Addr::new(10, 64 + i as u8, 0, 0)
}

/// Base of client-fleet `i`'s `/16` source block.
pub fn client_fleet_base(i: usize) -> Ipv4Addr {
    assert!(i < 64, "client fleet index {i} out of range");
    Ipv4Addr::new(10, 128 + i as u8, 0, 0)
}

/// Experiment timeline: total duration and the attack window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timeline {
    /// Total simulated seconds.
    pub total: f64,
    /// Attack start (seconds).
    pub attack_start: f64,
    /// Attack stop (seconds).
    pub attack_stop: f64,
}

impl Timeline {
    /// The paper's timeline: 600 s with the attack on [120, 480).
    pub fn full() -> Timeline {
        Timeline {
            total: 600.0,
            attack_start: 120.0,
            attack_stop: 480.0,
        }
    }

    /// Time-compressed default: 150 s with the attack on [30, 120).
    pub fn quick() -> Timeline {
        Timeline {
            total: 150.0,
            attack_start: 30.0,
            attack_stop: 120.0,
        }
    }

    /// Even shorter timeline for unit tests.
    pub fn smoke() -> Timeline {
        Timeline {
            total: 60.0,
            attack_start: 10.0,
            attack_stop: 45.0,
        }
    }

    /// Picks `full()` or `quick()` from a `--full` style flag.
    pub fn from_full_flag(full: bool) -> Timeline {
        if full {
            Timeline::full()
        } else {
            Timeline::quick()
        }
    }

    /// A measurement window inside the attack, trimmed to skip the
    /// transient at each edge.
    pub fn attack_window(&self) -> (f64, f64) {
        let margin = ((self.attack_stop - self.attack_start) * 0.1).min(15.0);
        (self.attack_start + margin, self.attack_stop - margin)
    }

    /// A measurement window before the attack.
    pub fn before_window(&self) -> (f64, f64) {
        (2.0, self.attack_start.max(4.0) - 2.0)
    }
}

/// The puzzle parameters every scenario preset shares: oracle
/// verification (the simulation substitution, DESIGN.md) and the paper's
/// 30 s controller hold.
fn oracle_puzzle_config(k: u8, m: u8) -> PuzzleConfig {
    oracle_puzzle_config_for(AlgoId::Prefix, k, m)
}

/// [`oracle_puzzle_config`] posing `algo` instead of the hash-prefix
/// default.
fn oracle_puzzle_config_for(algo: AlgoId, k: u8, m: u8) -> PuzzleConfig {
    PuzzleConfig {
        difficulty: Difficulty::new(k, m).expect("valid difficulty"),
        preimage_bits: 32,
        expiry: 8,
        verify: VerifyMode::Oracle,
        hold: SimDuration::from_secs(30),
        verify_workers: 1,
        algo,
    }
}

/// Strict unsigned-decimal parse for sweep-name suffixes: every byte
/// must be an ASCII digit, so `+4096`, ` 17`, or `0x10` are rejected
/// rather than silently accepted by `str::parse`'s laxer grammar.
fn parse_digits<T: std::str::FromStr>(s: &str) -> Option<T> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// A named, buildable defence — one entry of the sweep axis.
///
/// This replaces the old closed `Defense` enum with a registry:
/// [`DefenseSpec::registered`] lists the standard specs (including the
/// `adaptive` and `stacked` compositions the enum could never express),
/// [`DefenseSpec::by_name`] resolves sweep names like `--defense
/// adaptive`, and every spec carries the [`PolicyBuilder`] that servers
/// instantiate per listener.
#[derive(Clone, Debug)]
pub struct DefenseSpec {
    name: String,
    label: String,
    builder: PolicyBuilder<AutoBackend>,
    family: Option<PuzzleFamily>,
}

/// The re-targetable core of a puzzle defence: which algorithm it poses
/// at which difficulty, so [`DefenseSpec::for_algo`] can re-pose it
/// under another algorithm (the matrix's algorithm axis).
#[derive(Clone, Copy, Debug)]
struct PuzzleFamily {
    algo: AlgoId,
    k: u8,
    m: u8,
    /// Issuance window for the near-stateless variant; `None` for
    /// classic per-flow puzzles.
    window: Option<u32>,
}

impl DefenseSpec {
    fn make(
        name: impl Into<String>,
        label: impl Into<String>,
        builder: PolicyBuilder<AutoBackend>,
    ) -> DefenseSpec {
        DefenseSpec {
            name: name.into(),
            label: label.into(),
            builder,
            family: None,
        }
    }

    /// Unprotected server.
    pub fn none() -> DefenseSpec {
        DefenseSpec::make("none", "nodefense", PolicyBuilder::none())
    }

    /// SYN cache with the given capacity (§2.1 baseline).
    pub fn syn_cache(capacity: usize) -> DefenseSpec {
        DefenseSpec::make(
            "syncache",
            format!("syncache-{capacity}"),
            PolicyBuilder::syn_cache(SynCacheConfig {
                capacity,
                ..SynCacheConfig::default()
            }),
        )
    }

    /// SYN cookies.
    pub fn cookies() -> DefenseSpec {
        DefenseSpec::make("cookies", "cookies", PolicyBuilder::syn_cookies())
    }

    /// Client puzzles at difficulty `(k, m)` with the oracle verifier.
    pub fn puzzles(k: u8, m: u8) -> DefenseSpec {
        DefenseSpec::puzzles_for(AlgoId::Prefix, k, m)
    }

    /// Client puzzles posing `algo` at difficulty `(k, m)` with the
    /// oracle verifier. The hash-prefix names (`puzzles-k<k>m<m>` /
    /// `challenges-k<k>m<m>`) are unchanged from [`DefenseSpec::puzzles`];
    /// the collision algorithm names both as `collide-k<k>m<m>`.
    pub fn puzzles_for(algo: AlgoId, k: u8, m: u8) -> DefenseSpec {
        let (name, label) = match algo {
            AlgoId::Prefix => (format!("puzzles-k{k}m{m}"), format!("challenges-k{k}m{m}")),
            AlgoId::Collide => (format!("collide-k{k}m{m}"), format!("collide-k{k}m{m}")),
        };
        let mut spec = DefenseSpec::make(
            name,
            label,
            PolicyBuilder::puzzles(oracle_puzzle_config_for(algo, k, m)),
        );
        spec.family = Some(PuzzleFamily {
            algo,
            k,
            m,
            window: None,
        });
        spec
    }

    /// The paper's Nash difficulty (2, 17) (§4.4).
    pub fn nash() -> DefenseSpec {
        let mut spec = DefenseSpec::puzzles(2, 17);
        spec.name = "nash".into();
        spec
    }

    /// Closed-loop puzzles (§7): difficulty moves in `[floor_m,
    /// ceiling_m]` bits at fixed `k`, escalating while puzzle admissions
    /// exceed `target` per second and relaxing after `cooldown` calm
    /// seconds.
    pub fn adaptive_between(
        k: u8,
        floor_m: u8,
        ceiling_m: u8,
        target: f64,
        cooldown: u32,
    ) -> DefenseSpec {
        let controller = AdaptiveDifficulty::new(
            Difficulty::new(k, floor_m).expect("valid floor"),
            Difficulty::new(k, ceiling_m).expect("valid ceiling"),
            target,
            cooldown,
        )
        .expect("valid controller config");
        DefenseSpec::make(
            "adaptive",
            format!("adaptive-k{k}m{floor_m}..{ceiling_m}"),
            PolicyBuilder::adaptive_puzzles(oracle_puzzle_config(k, floor_m), controller),
        )
    }

    /// The standard adaptive preset: `(2, 12..20)`, 60 admissions/s
    /// target, 10 s cooldown.
    pub fn adaptive() -> DefenseSpec {
        DefenseSpec::adaptive_between(2, 12, 20, 60.0, 10)
    }

    /// Near-stateless windowed puzzles (rspow-style issuance): the Nash
    /// difficulty, challenges bound to `(window, tuple)` under a
    /// PRF-derived window nonce, zero per-flow state before a valid
    /// proof, replay admissions purged at every window rollover.
    pub fn stateless_puzzles() -> DefenseSpec {
        DefenseSpec::stateless_puzzles_for(AlgoId::Prefix, 2, 17, 8)
    }

    /// Near-stateless windowed puzzles posing `algo` at `(k, m)` with a
    /// `window`-second issuance window.
    pub fn stateless_puzzles_for(algo: AlgoId, k: u8, m: u8, window: u32) -> DefenseSpec {
        let (name, label) = match algo {
            AlgoId::Prefix => ("stateless-puzzles", format!("stateless-k{k}m{m}w{window}")),
            AlgoId::Collide => (
                "stateless-collide",
                format!("stateless-collide-k{k}m{m}w{window}"),
            ),
        };
        let mut spec = DefenseSpec::make(
            name,
            label,
            PolicyBuilder::stateless_puzzles(oracle_puzzle_config_for(algo, k, m), window),
        );
        spec.family = Some(PuzzleFamily {
            algo,
            k,
            m,
            window: Some(window),
        });
        spec
    }

    /// The collision-puzzle registry default: the Nash cell re-posed
    /// under the memory-bound collision algorithm at equal attacker
    /// cost ([`DefenseSpec::for_algo`]; κ drops 16 → 2, so the honest
    /// client's bill shrinks 8× for the same attacker deterrence).
    pub fn puzzles_collide() -> DefenseSpec {
        let mut spec = DefenseSpec::nash().for_algo(AlgoId::Collide);
        spec.name = "puzzles-collide".into();
        spec
    }

    /// [`DefenseSpec::stateless_puzzles`] re-posed under the collision
    /// algorithm at equal attacker cost.
    pub fn stateless_collide() -> DefenseSpec {
        DefenseSpec::stateless_puzzles().for_algo(AlgoId::Collide)
    }

    /// Re-poses this defence's puzzles under `algo` at the difficulty
    /// that keeps the *attacker's* bill constant: the expected
    /// honest-client hashes scale by `κ(algo)/κ(current)`
    /// ([`AlgoId::default_attacker_speedup`]) — an algorithm attackers
    /// accelerate less needs proportionally fewer client hashes for the
    /// same deterrence. The sub-puzzle strength saturates at `m = 31`
    /// (the posed pre-image is 32 bits). Non-puzzle defences and the
    /// adaptive/stacked compositions are returned unchanged.
    pub fn for_algo(&self, algo: AlgoId) -> DefenseSpec {
        let Some(f) = self.family else {
            return self.clone();
        };
        if f.algo == algo {
            return self.clone();
        }
        let src = Difficulty::new(f.k, f.m).expect("family difficulty is valid");
        let target = f.algo.expected_solve_hashes(src) * algo.default_attacker_speedup()
            / f.algo.default_attacker_speedup();
        let m = (1..32)
            .find(|&m| {
                let d = Difficulty::new(f.k, m).expect("k already validated");
                algo.expected_solve_hashes(d) >= target
            })
            .unwrap_or(31);
        match f.window {
            Some(w) => DefenseSpec::stateless_puzzles_for(algo, f.k, m, w),
            None => DefenseSpec::puzzles_for(algo, f.k, m),
        }
    }

    /// SYN-cache spillover *then* Nash puzzles — the paper's precedence
    /// rules as explicit composition.
    pub fn stacked_syncache_puzzles(capacity: usize) -> DefenseSpec {
        DefenseSpec::make(
            "stacked",
            format!("syncache-{capacity}+challenges-k2m17"),
            PolicyBuilder::stacked(vec![
                PolicyBuilder::syn_cache(SynCacheConfig {
                    capacity,
                    ..SynCacheConfig::default()
                }),
                PolicyBuilder::puzzles(oracle_puzzle_config(2, 17)),
            ]),
        )
    }

    /// The registry: every standard named defence, in sweep order.
    pub fn registered() -> Vec<DefenseSpec> {
        vec![
            DefenseSpec::none(),
            DefenseSpec::syn_cache(4096),
            DefenseSpec::cookies(),
            DefenseSpec::nash(),
            DefenseSpec::adaptive(),
            DefenseSpec::stacked_syncache_puzzles(4096),
            DefenseSpec::stateless_puzzles(),
            DefenseSpec::puzzles_collide(),
            DefenseSpec::stateless_collide(),
        ]
    }

    /// Resolves a sweep name (`--defense <name>`): registry names
    /// (`none`/`nodefense`, `syncache[-<cap>]`, `cookies`,
    /// `nash`/`puzzles`, `adaptive`, `stacked`,
    /// `stateless-puzzles`/`stateless`, `puzzles-collide`/`collide`,
    /// `stateless-collide`) plus parameterized puzzle forms
    /// (`puzzles-k<k>m<m>`, `challenges-k<k>m<m>`, `collide-k<k>m<m>`).
    ///
    /// Numeric suffixes are strict decimal digits: `syncache-+4096`
    /// or `puzzles-k 2m17` are unknown names, not silently-parsed
    /// variants (Rust's `parse` would otherwise accept a leading `+`).
    pub fn by_name(name: &str) -> Option<DefenseSpec> {
        match name {
            "none" | "nodefense" => return Some(DefenseSpec::none()),
            "syncache" => return Some(DefenseSpec::syn_cache(4096)),
            "cookies" => return Some(DefenseSpec::cookies()),
            "nash" | "puzzles" => return Some(DefenseSpec::nash()),
            "adaptive" => return Some(DefenseSpec::adaptive()),
            "stacked" | "syncache+puzzles" => {
                return Some(DefenseSpec::stacked_syncache_puzzles(4096))
            }
            "stateless-puzzles" | "stateless" => return Some(DefenseSpec::stateless_puzzles()),
            "puzzles-collide" | "collide" => return Some(DefenseSpec::puzzles_collide()),
            "stateless-collide" => return Some(DefenseSpec::stateless_collide()),
            _ => {}
        }
        if let Some(cap) = name.strip_prefix("syncache-") {
            return parse_digits(cap).map(DefenseSpec::syn_cache);
        }
        let (algo, km) = if let Some(km) = name
            .strip_prefix("puzzles-k")
            .or_else(|| name.strip_prefix("challenges-k"))
        {
            (AlgoId::Prefix, km)
        } else {
            (AlgoId::Collide, name.strip_prefix("collide-k")?)
        };
        let (k, m) = km.split_once('m')?;
        let (k, m) = (parse_digits::<u8>(k)?, parse_digits::<u8>(m)?);
        // Out-of-range difficulties (k = 0, m = 0, or m too wide for
        // the posed 32-bit pre-image) are "unknown defense", not a
        // panic inside the builder.
        Difficulty::new(k, m).ok()?;
        if m >= 32 {
            return None;
        }
        Some(DefenseSpec::puzzles_for(algo, k, m))
    }

    /// The registry/sweep name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Short display label for tables.
    pub fn label(&self) -> String {
        self.label.clone()
    }

    /// The policy factory servers instantiate.
    pub fn builder(&self) -> &PolicyBuilder<AutoBackend> {
        &self.builder
    }
}

/// A complete scenario description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// RNG seed for the run.
    pub seed: u64,
    /// Server parameters.
    pub server: ServerParams,
    /// Client parameters, one per client host.
    pub clients: Vec<ClientParams>,
    /// Attacker parameters, one per bot.
    pub attackers: Vec<AttackerParams>,
    /// Aggregated botnets, one node each (fleet-scale attacks; see
    /// `hostsim::fleet`). The `addr_base` should come from
    /// [`bot_fleet_base`] so routing stays collision-free.
    pub bot_fleets: Vec<BotFleetParams>,
    /// Aggregated benign populations, one node each.
    pub client_fleets: Vec<ClientFleetParams>,
}

impl Scenario {
    /// The paper's server preset (§6): µ = 1100 req/s, Linux-default
    /// backlog 256, accept queue 1024. (The paper's Fig. 10 axes suggest
    /// a 4096 backlog; we keep the backlog *below* the flood's half-open
    /// occupancy so queue pressure trips the opportunistic controller
    /// before the application's connection table is poisoned — see
    /// EXPERIMENTS.md for the scaling discussion. The fill *fractions*
    /// are the reproduction target, not the absolute axis.)
    pub fn paper_server(defense: &DefenseSpec) -> ServerParams {
        let mut p = ServerParams::new(SERVER_IP, SERVER_PORT, defense.builder().clone());
        p.backlog = 256;
        p.accept_backlog = 512;
        p.secret = scenario_secret();
        p
    }

    /// The paper's client population (§6): `n` clients at 20 req/s of
    /// 10 kB each, device profiles cycling through the Fig. 3a CPUs.
    pub fn paper_clients(n: usize, solving: bool) -> Vec<ClientParams> {
        (0..n)
            .map(|i| {
                let profile = hostsim::profiles::CLIENT_CPUS[i % 3];
                let behavior = if solving {
                    SolveBehavior::Solve(oracle_strategy())
                } else {
                    SolveBehavior::Ignore
                };
                ClientParams::new(client_addr(i), SERVER_IP, behavior, profile.hash_rate)
            })
            .collect()
    }

    /// The paper's SYN-flood botnet: `n` bots at `rate` spoofed pps each.
    pub fn syn_flood_bots(n: usize, rate: f64, timeline: &Timeline) -> Vec<AttackerParams> {
        (0..n)
            .map(|i| AttackerParams {
                addr: attacker_addr(i),
                target_addr: SERVER_IP,
                target_port: SERVER_PORT,
                kind: AttackKind::SynFlood { rate, spoof: true },
                hash_rate: 400_000.0,
                start: SimTime::from_secs_f64(timeline.attack_start),
                stop: SimTime::from_secs_f64(timeline.attack_stop),
            })
            .collect()
    }

    /// The paper's connection-flood botnet: `n` bots attempting `rate`
    /// connections/s each (`nping`-style: 256-socket window, 1 s
    /// timeout, 200 ms ACK lag), solving challenges iff `solving`.
    pub fn conn_flood_bots(
        n: usize,
        rate: f64,
        solving: bool,
        timeline: &Timeline,
    ) -> Vec<AttackerParams> {
        (0..n)
            .map(|i| AttackerParams {
                addr: attacker_addr(i),
                target_addr: SERVER_IP,
                target_port: SERVER_PORT,
                kind: AttackKind::ConnFlood {
                    rate,
                    solve: solving.then(oracle_strategy),
                    concurrency: 256,
                    conn_timeout: SimDuration::from_secs(1),
                    ack_delay: SimDuration::from_millis(500),
                },
                hash_rate: 400_000.0,
                start: SimTime::from_secs_f64(timeline.attack_start),
                stop: SimTime::from_secs_f64(timeline.attack_stop),
            })
            .collect()
    }

    /// The paper's standard load (§6): 15 clients at 20 req/s of 10 kB.
    pub fn standard(seed: u64, defense: DefenseSpec, timeline: &Timeline) -> Scenario {
        let _ = timeline;
        Scenario {
            seed,
            server: Self::paper_server(&defense),
            clients: Self::paper_clients(15, true),
            attackers: Vec::new(),
            bot_fleets: Vec::new(),
            client_fleets: Vec::new(),
        }
    }

    /// Builds the Figure 16 testbed and returns the runnable simulation.
    pub fn build(self) -> Testbed {
        let mut b = NetBuilder::new(self.seed);

        // Backbone: three fully meshed routers.
        let r0 = b.add_node(Host::Router(Router::new()));
        let r1 = b.add_node(Host::Router(Router::new()));
        let r2 = b.add_node(Host::Router(Router::new()));
        let routers = [r0, r1, r2];
        let (r0_to_r1, r1_to_r0) = b.connect(r0, r1, LinkSpec::gigabit());
        let (r0_to_r2, r2_to_r0) = b.connect(r0, r2, LinkSpec::gigabit());
        let (r1_to_r2, r2_to_r1) = b.connect(r1, r2, LinkSpec::gigabit());

        // Server off router 0 at 1 Gbps.
        let server_id = b.add_node(Host::Server(ServerHost::new(self.server)));
        let (r0_to_srv, _) = b.connect(r0, server_id, LinkSpec::gigabit());

        // Hosts round-robin across routers 1 and 2 at 100 Mbps.
        // Per-router route lists: (addr, iface on that router).
        let mut host_routes: Vec<Vec<(Ipv4Addr, netsim::IfaceId)>> = vec![vec![]; 3];
        let mut client_ids = Vec::new();
        let mut client_addrs = Vec::new();
        for (i, params) in self.clients.into_iter().enumerate() {
            let addr = params.addr;
            let id = b.add_node(Host::Client(ClientHost::new(params)));
            let router = routers[1 + i % 2];
            let (r_if, _) = b.connect(router, id, LinkSpec::fast_ethernet());
            host_routes[1 + i % 2].push((addr, r_if));
            client_ids.push(id);
            client_addrs.push(addr);
        }
        let mut attacker_ids = Vec::new();
        let mut attacker_addrs = Vec::new();
        for (i, params) in self.attackers.into_iter().enumerate() {
            let addr = params.addr;
            let id = b.add_node(Host::Attacker(AttackerHost::new(params)));
            let router = routers[1 + i % 2];
            let (r_if, _) = b.connect(router, id, LinkSpec::fast_ethernet());
            host_routes[1 + i % 2].push((addr, r_if));
            attacker_ids.push(id);
            attacker_addrs.push(addr);
        }

        // Fleets aggregate whole populations behind one node, so they
        // attach on gigabit links and route by their /16 block.
        // Per-router prefix routes: (block base, iface on that router).
        let mut fleet_routes: Vec<Vec<(Ipv4Addr, netsim::IfaceId)>> = vec![vec![]; 3];
        let mut bot_fleet_ids = Vec::new();
        for (i, params) in self.bot_fleets.into_iter().enumerate() {
            let base = params.addr_base;
            let id = b.add_node(Host::BotFleet(BotFleet::new(params)));
            let router = routers[1 + i % 2];
            let (r_if, _) = b.connect(router, id, LinkSpec::gigabit());
            fleet_routes[1 + i % 2].push((base, r_if));
            bot_fleet_ids.push(id);
        }
        let mut client_fleet_ids = Vec::new();
        for (i, params) in self.client_fleets.into_iter().enumerate() {
            let base = params.addr_base;
            let id = b.add_node(Host::ClientFleet(ClientFleet::new(params)));
            let router = routers[1 + i % 2];
            let (r_if, _) = b.connect(router, id, LinkSpec::gigabit());
            fleet_routes[1 + i % 2].push((base, r_if));
            client_fleet_ids.push(id);
        }

        let mut sim = b.build();

        // Routing: r0 reaches the server directly and each host subnet via
        // the mesh; r1/r2 default toward r0 for the server and reach their
        // own hosts directly (plus each other's via the direct link).
        {
            let r = sim.node_mut(r0).as_router_mut().expect("router");
            r.add_route(Route::host(SERVER_IP, r0_to_srv));
            for &(addr, _) in &host_routes[1] {
                r.add_route(Route::host(addr, r0_to_r1));
            }
            for &(addr, _) in &host_routes[2] {
                r.add_route(Route::host(addr, r0_to_r2));
            }
            for &(base, _) in &fleet_routes[1] {
                r.add_route(Route::new(base, 16, r0_to_r1));
            }
            for &(base, _) in &fleet_routes[2] {
                r.add_route(Route::new(base, 16, r0_to_r2));
            }
        }
        {
            let r = sim.node_mut(r1).as_router_mut().expect("router");
            r.add_route(Route::host(SERVER_IP, r1_to_r0));
            for &(addr, iface) in &host_routes[1] {
                r.add_route(Route::host(addr, iface));
            }
            for &(addr, _) in &host_routes[2] {
                r.add_route(Route::host(addr, r1_to_r2));
            }
            for &(base, iface) in &fleet_routes[1] {
                r.add_route(Route::new(base, 16, iface));
            }
            for &(base, _) in &fleet_routes[2] {
                r.add_route(Route::new(base, 16, r1_to_r2));
            }
        }
        {
            let r = sim.node_mut(r2).as_router_mut().expect("router");
            r.add_route(Route::host(SERVER_IP, r2_to_r0));
            for &(addr, iface) in &host_routes[2] {
                r.add_route(Route::host(addr, iface));
            }
            for &(addr, _) in &host_routes[1] {
                r.add_route(Route::host(addr, r2_to_r1));
            }
            for &(base, iface) in &fleet_routes[2] {
                r.add_route(Route::new(base, 16, iface));
            }
            for &(base, _) in &fleet_routes[1] {
                r.add_route(Route::new(base, 16, r2_to_r1));
            }
        }

        Testbed {
            sim,
            server_id,
            client_ids,
            attacker_ids,
            bot_fleet_ids,
            client_fleet_ids,
            client_addrs,
            attacker_addrs,
        }
    }
}

/// A built, runnable testbed.
pub struct Testbed {
    /// The underlying simulation.
    pub sim: Simulation<TcpSegment, Host>,
    server_id: NodeId,
    client_ids: Vec<NodeId>,
    attacker_ids: Vec<NodeId>,
    bot_fleet_ids: Vec<NodeId>,
    client_fleet_ids: Vec<NodeId>,
    client_addrs: Vec<Ipv4Addr>,
    attacker_addrs: Vec<Ipv4Addr>,
}

impl Testbed {
    /// Runs to absolute time `t` seconds.
    pub fn run_until_secs(&mut self, t: f64) {
        self.sim.run_until(SimTime::from_secs_f64(t));
    }

    /// The server host.
    pub fn server(&self) -> &ServerHost {
        self.sim.node(self.server_id).as_server().expect("server")
    }

    /// Mutable server access (runtime difficulty tuning and the like).
    pub fn server_mut(&mut self) -> &mut ServerHost {
        self.sim
            .node_mut(self.server_id)
            .as_server_mut()
            .expect("server")
    }

    /// Server metrics shorthand.
    pub fn server_metrics(&self) -> &ServerMetrics {
        self.server().metrics()
    }

    /// The client hosts.
    pub fn clients(&self) -> impl Iterator<Item = &ClientHost> {
        self.client_ids
            .iter()
            .map(|id| self.sim.node(*id).as_client().expect("client"))
    }

    /// The attacker hosts.
    pub fn attackers(&self) -> impl Iterator<Item = &AttackerHost> {
        self.attacker_ids
            .iter()
            .map(|id| self.sim.node(*id).as_attacker().expect("attacker"))
    }

    /// The aggregated bot fleets.
    pub fn bot_fleets(&self) -> impl Iterator<Item = &BotFleet> {
        self.bot_fleet_ids
            .iter()
            .map(|id| self.sim.node(*id).as_bot_fleet().expect("bot fleet"))
    }

    /// The aggregated client fleets.
    pub fn client_fleets(&self) -> impl Iterator<Item = &ClientFleet> {
        self.client_fleet_ids
            .iter()
            .map(|id| self.sim.node(*id).as_client_fleet().expect("client fleet"))
    }

    /// All attacker addresses (for server-side attribution).
    pub fn attacker_addrs(&self) -> &[Ipv4Addr] {
        &self.attacker_addrs
    }

    /// All client addresses.
    pub fn client_addrs(&self) -> &[Ipv4Addr] {
        &self.client_addrs
    }

    /// Aggregate client goodput (bytes/s bins across all clients),
    /// zero-padded to the current simulation time.
    pub fn client_goodput(&self) -> IntervalSeries {
        let mut total = IntervalSeries::new(1.0);
        for c in self.clients() {
            for (t, v) in c.metrics().bytes_rx.points() {
                if v != 0.0 {
                    total.add(t, v);
                }
            }
        }
        for f in self.client_fleets() {
            for (t, v) in f.goodput().points() {
                if v != 0.0 {
                    total.add(t, v);
                }
            }
        }
        let now = self.sim.now().as_secs_f64();
        if now >= 1.0 {
            total.extend_to(now - 1.0);
        }
        total
    }

    /// Aggregate attacker packets-sent series (per-host bots and fleets).
    pub fn attacker_packet_rate(&self) -> IntervalSeries {
        let mut total = IntervalSeries::new(1.0);
        for a in self.attackers() {
            for (t, v) in a.metrics().packets_sent.points() {
                if v != 0.0 {
                    total.add(t, v);
                }
            }
        }
        for f in self.bot_fleets() {
            for (t, v) in f.packet_series().points() {
                if v != 0.0 {
                    total.add(t, v);
                }
            }
        }
        total
    }
}

/// A scenario-matrix sweep: the cross product of
/// {defense × attack kind × fleet size × seed}, each cell run on the
/// standard testbed with one aggregated [`BotFleet`] carrying the
/// attack. Every cell reduces to a [`MatrixCell`]: a goodput summary
/// plus the golden-run digest of the whole testbed, so sweeps are both
/// comparable (goodput) and reproducible (digest — same seed ⇒ same
/// digest, across engines and hash backends).
///
/// This is the shared entry point for fig07/fig08-style experiments at
/// fleet scale (see [`crate::fig07::run_fleet`] and
/// [`crate::fig08::run_fleet`]) and for ad-hoc sweeps:
///
/// ```no_run
/// use experiments::scenario::{DefenseSpec, Matrix, Timeline};
/// use hostsim::FleetAttack;
/// use netsim::SimDuration;
///
/// let cells = Matrix::new(Timeline::smoke())
///     .defenses(vec![DefenseSpec::none(), DefenseSpec::nash()])
///     .attacks(vec![FleetAttack::ConnFlood {
///         rate: 20_000.0,
///         solve: None,
///         conn_timeout: SimDuration::from_secs(1),
///         ack_delay: SimDuration::from_millis(500),
///     }])
///     .fleet_sizes(vec![10_000, 100_000])
///     .seeds(vec![1, 2])
///     .run();
/// for c in &cells {
///     println!("{c}");
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Matrix {
    /// Timeline every cell runs on.
    pub timeline: Timeline,
    /// Defence axis.
    pub defenses: Vec<DefenseSpec>,
    /// Puzzle-algorithm axis: every puzzle defence is re-posed under
    /// each listed algorithm via [`DefenseSpec::for_algo`] (equal
    /// attacker cost); non-puzzle defences run once per algorithm
    /// unchanged. Defaults to empty — the identity axis, which runs
    /// every defence exactly as specified (a `puzzles-collide` entry
    /// stays collide; listing `[Prefix]` would re-pose it).
    pub algos: Vec<AlgoId>,
    /// Attack axis (aggregate rates live inside the variants).
    pub attacks: Vec<FleetAttack>,
    /// Fleet-size axis (flows per cell, up to 10⁶).
    pub fleet_sizes: Vec<usize>,
    /// Listener-shard axis ([`ServerParams::shards`]; each entry rounds
    /// up to a power of two). Defaults to `[1]` — the serial listener
    /// every pre-sharding digest was captured under.
    pub shards: Vec<usize>,
    /// Step pipeline every cell's sharded listener runs
    /// ([`tcpstack::ShardPipeline`], default `Auto`). Not an axis:
    /// digests are pipeline-invariant by construction, so sweeping it
    /// would only re-run identical cells — but forcing `Persistent`
    /// lets a single-core host exercise the worker pipeline, and
    /// forcing `Inline` isolates dispatch overhead.
    pub pipeline: tcpstack::ShardPipeline,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Benign per-host clients measuring goodput in every cell.
    pub clients: usize,
}

/// One finished matrix cell.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Defence label ([`DefenseSpec::label`]).
    pub defense: String,
    /// Attack label ([`FleetAttack::label`]).
    pub attack: String,
    /// Fleet size (flows).
    pub flows: usize,
    /// Listener shards the cell's server ran with.
    pub shards: usize,
    /// RNG seed.
    pub seed: u64,
    /// Golden-run digest of the finished testbed
    /// ([`crate::golden::digest_testbed`]).
    pub digest: String,
    /// Mean client goodput before the attack (B/s).
    pub goodput_before: f64,
    /// Mean client goodput during the attack window (B/s).
    pub goodput_during: f64,
    /// Attack packets the fleet actually sent.
    pub attack_packets: u64,
    /// Peak retained defence state at the server
    /// ([`hostsim::ServerMetrics::peak_defense_state_bytes`]): the
    /// memory-footprint observable showing the near-stateless policy's
    /// O(acceptance-window) state against the per-flow growth of the
    /// SYN cache and classic puzzle replay admissions.
    pub defense_state_peak: u64,
}

impl MatrixCell {
    /// Goodput retained during the attack, as a fraction of nominal.
    pub fn retained(&self) -> f64 {
        if self.goodput_before <= 0.0 {
            return 0.0;
        }
        self.goodput_during / self.goodput_before
    }
}

impl fmt::Display for MatrixCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x {} x {} flows x {} shards x seed {}: {:.0} -> {:.0} kB/s ({:.0}% retained) state_peak {} B digest {}",
            self.defense,
            self.attack,
            self.flows,
            self.shards,
            self.seed,
            self.goodput_before / 1e3,
            self.goodput_during / 1e3,
            self.retained() * 100.0,
            self.defense_state_peak,
            &self.digest[..16],
        )
    }
}

impl Matrix {
    /// A matrix over `timeline` with empty axes and the paper's 15
    /// goodput-measuring clients.
    pub fn new(timeline: Timeline) -> Self {
        Matrix {
            timeline,
            defenses: Vec::new(),
            algos: Vec::new(),
            attacks: Vec::new(),
            fleet_sizes: Vec::new(),
            shards: vec![1],
            pipeline: tcpstack::ShardPipeline::Auto,
            seeds: Vec::new(),
            clients: 15,
        }
    }

    /// Sets the defence axis.
    pub fn defenses(mut self, defenses: Vec<DefenseSpec>) -> Self {
        self.defenses = defenses;
        self
    }

    /// Sets the puzzle-algorithm axis (default empty — the identity
    /// axis, which runs every defence exactly as specified).
    pub fn algos(mut self, algos: Vec<AlgoId>) -> Self {
        self.algos = algos;
        self
    }

    /// Sets the attack axis.
    pub fn attacks(mut self, attacks: Vec<FleetAttack>) -> Self {
        self.attacks = attacks;
        self
    }

    /// Sets the fleet-size axis.
    pub fn fleet_sizes(mut self, fleet_sizes: Vec<usize>) -> Self {
        self.fleet_sizes = fleet_sizes;
        self
    }

    /// Sets the listener-shard axis (default `[1]`).
    pub fn shards(mut self, shards: Vec<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the step pipeline for every cell (default
    /// [`tcpstack::ShardPipeline::Auto`]).
    pub fn pipeline(mut self, pipeline: tcpstack::ShardPipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the seed axis.
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets how many benign clients measure goodput per cell.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Number of cells the sweep will run.
    pub fn cell_count(&self) -> usize {
        self.defenses.len()
            * self.algos.len().max(1)
            * self.attacks.len()
            * self.fleet_sizes.len()
            * self.shards.len()
            * self.seeds.len()
    }

    /// Builds the scenario for one cell (also useful to run a single
    /// cell by hand, e.g. the CI 100k-flow smoke) with a single-shard
    /// server. See [`Matrix::cell_scenario_sharded`] for the shard axis.
    pub fn cell_scenario(
        &self,
        defense: &DefenseSpec,
        attack: &FleetAttack,
        flows: usize,
        seed: u64,
    ) -> Scenario {
        self.cell_scenario_sharded(defense, attack, flows, 1, seed)
    }

    /// Builds the scenario for one cell with `shards` listener shards
    /// (normalized to the power of two the server will actually run —
    /// [`tcpstack::ShardedListener`] rounds up).
    pub fn cell_scenario_sharded(
        &self,
        defense: &DefenseSpec,
        attack: &FleetAttack,
        flows: usize,
        shards: usize,
        seed: u64,
    ) -> Scenario {
        let mut s = Scenario::standard(seed, defense.clone(), &self.timeline);
        s.server.shards = shards.max(1).next_power_of_two();
        s.server.pipeline = self.pipeline;
        s.clients = Scenario::paper_clients(self.clients, true);
        s.bot_fleets = vec![BotFleetParams {
            addr_base: bot_fleet_base(0),
            target_addr: SERVER_IP,
            target_port: SERVER_PORT,
            attack: attack.clone(),
            flows,
            hash_rate: 400_000.0,
            start: SimTime::from_secs_f64(self.timeline.attack_start),
            stop: SimTime::from_secs_f64(self.timeline.attack_stop),
        }];
        s
    }

    /// Runs one single-shard cell to completion and reduces it.
    pub fn run_cell(
        &self,
        defense: &DefenseSpec,
        attack: &FleetAttack,
        flows: usize,
        seed: u64,
    ) -> MatrixCell {
        self.run_cell_sharded(defense, attack, flows, 1, seed)
    }

    /// Runs one cell at an explicit listener-shard count and reduces
    /// it. The cell records the *effective* (power-of-two) shard count,
    /// so `--shards 3` reports as the 4-shard run it actually was.
    pub fn run_cell_sharded(
        &self,
        defense: &DefenseSpec,
        attack: &FleetAttack,
        flows: usize,
        shards: usize,
        seed: u64,
    ) -> MatrixCell {
        let shards = shards.max(1).next_power_of_two();
        let mut tb = self
            .cell_scenario_sharded(defense, attack, flows, shards, seed)
            .build();
        tb.run_until_secs(self.timeline.total);
        let goodput = tb.client_goodput();
        let (b0, b1) = self.timeline.before_window();
        let (a0, a1) = self.timeline.attack_window();
        MatrixCell {
            defense: defense.label(),
            attack: attack.label().to_string(),
            flows,
            shards,
            seed,
            digest: crate::golden::digest_testbed(&tb),
            goodput_before: goodput.mean_rate_between(b0, b1),
            goodput_during: goodput.mean_rate_between(a0, a1),
            attack_packets: tb.bot_fleets().map(|f| f.stats().packets_sent).sum(),
            defense_state_peak: tb.server_metrics().peak_defense_state_bytes,
        }
    }

    /// Runs the whole sweep, cells in axis order (defense-major, then
    /// the algorithm axis re-posing each puzzle defence; an empty
    /// algorithm axis runs each defence once, as specified).
    pub fn run(&self) -> Vec<MatrixCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        let algos: Vec<Option<AlgoId>> = if self.algos.is_empty() {
            vec![None]
        } else {
            self.algos.iter().copied().map(Some).collect()
        };
        for defense in &self.defenses {
            for &algo in &algos {
                let defense = match algo {
                    Some(algo) => defense.for_algo(algo),
                    None => defense.clone(),
                };
                for attack in &self.attacks {
                    for &flows in &self.fleet_sizes {
                        for &shards in &self.shards {
                            for &seed in &self.seeds {
                                cells.push(
                                    self.run_cell_sharded(&defense, attack, flows, shards, seed),
                                );
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..300 {
            assert!(seen.insert(client_addr(i)), "client {i}");
            assert!(seen.insert(attacker_addr(i)), "attacker {i}");
        }
    }

    #[test]
    fn timelines() {
        let full = Timeline::full();
        assert_eq!(full.total, 600.0);
        assert_eq!(full.attack_start, 120.0);
        let (a, b) = full.attack_window();
        assert!(a > full.attack_start && b < full.attack_stop);
        assert_eq!(Timeline::from_full_flag(true), full);
        assert_eq!(Timeline::from_full_flag(false), Timeline::quick());
    }

    #[test]
    fn defense_labels_and_modes() {
        assert_eq!(DefenseSpec::none().label(), "nodefense");
        assert_eq!(DefenseSpec::cookies().label(), "cookies");
        assert_eq!(DefenseSpec::nash().label(), "challenges-k2m17");
        assert_eq!(DefenseSpec::syn_cache(4096).label(), "syncache-4096");
        assert_eq!(DefenseSpec::nash().builder().label(), "puzzles");
        assert_eq!(DefenseSpec::adaptive().builder().label(), "adaptive");

        // The registry resolves every spec it lists, by name.
        for spec in DefenseSpec::registered() {
            let resolved = DefenseSpec::by_name(spec.name()).expect("registered name resolves");
            assert_eq!(resolved.label(), spec.label(), "{}", spec.name());
        }
        // Parameterized and alias forms.
        assert_eq!(
            DefenseSpec::by_name("challenges-k3m9")
                .expect("parses")
                .label(),
            "challenges-k3m9"
        );
        assert_eq!(
            DefenseSpec::by_name("syncache-512")
                .expect("parses")
                .label(),
            "syncache-512"
        );
        assert_eq!(
            DefenseSpec::by_name("nodefense").expect("alias").label(),
            "nodefense"
        );
        assert!(DefenseSpec::by_name("frobnicate").is_none());
        // Syntactically valid but out-of-range difficulties are unknown,
        // not a panic in the builder.
        assert!(DefenseSpec::by_name("puzzles-k0m8").is_none());
        assert!(DefenseSpec::by_name("challenges-k2m64").is_none());
    }

    #[test]
    fn algo_axis_reposes_puzzles_at_equal_attacker_cost() {
        // κ drops 16 → 2 across prefix → collide, so nash (2, 17)'s
        // 2^17 expected client hashes re-pose as ≈ 2^14 under the
        // birthday model: (2, 26).
        let collide = DefenseSpec::nash().for_algo(AlgoId::Collide);
        assert_eq!(collide.label(), "collide-k2m26");
        assert_eq!(collide.builder().label(), "puzzles-collide");
        // Identity when the algorithm already matches, and for
        // non-puzzle defences.
        assert_eq!(
            DefenseSpec::nash().for_algo(AlgoId::Prefix).label(),
            "challenges-k2m17"
        );
        assert_eq!(
            DefenseSpec::cookies().for_algo(AlgoId::Collide).label(),
            "cookies"
        );
        // Registry defaults carry the re-posed difficulty.
        assert_eq!(DefenseSpec::puzzles_collide().name(), "puzzles-collide");
        assert_eq!(DefenseSpec::puzzles_collide().label(), "collide-k2m26");
        assert_eq!(DefenseSpec::stateless_collide().name(), "stateless-collide");
        assert_eq!(
            DefenseSpec::stateless_collide().label(),
            "stateless-collide-k2m26w8"
        );
        // The axis multiplies the sweep.
        let matrix = Matrix::new(Timeline::smoke())
            .defenses(vec![DefenseSpec::nash()])
            .algos(AlgoId::ALL.to_vec())
            .attacks(vec![FleetAttack::SynFlood {
                rate: 1.0,
                spoof: true,
            }])
            .fleet_sizes(vec![1])
            .seeds(vec![1]);
        assert_eq!(matrix.cell_count(), 2);
    }

    #[test]
    fn by_name_rejects_lax_numeric_suffixes() {
        // `str::parse` accepts a leading `+`; sweep names must not —
        // `--defense syncache-+4096` is a typo, not a capacity.
        for bad in [
            "syncache-+4096",
            "syncache-4 096",
            "syncache-",
            "puzzles-k+2m17",
            "challenges-k2m+17",
            "collide-k2m+26",
            "puzzles-k2m",
            "collide-k0m10",
            // m ≥ 32 cannot be posed on a 32-bit pre-image.
            "puzzles-k2m32",
            "collide-k2m40",
        ] {
            assert!(DefenseSpec::by_name(bad).is_none(), "{bad}");
        }
        assert_eq!(
            DefenseSpec::by_name("collide-k2m26").unwrap().label(),
            "collide-k2m26"
        );
    }

    #[test]
    fn fig16_testbed_routes_traffic_end_to_end() {
        // One client, no attack: requests must complete across the mesh.
        let timeline = Timeline::smoke();
        let mut scenario = Scenario::standard(11, DefenseSpec::none(), &timeline);
        scenario.clients.truncate(3);
        let mut tb = scenario.build();
        tb.run_until_secs(10.0);
        let done: u64 = tb.clients().map(|c| c.metrics().completed).sum();
        let started: u64 = tb.clients().map(|c| c.metrics().started).sum();
        assert!(started > 100, "started {started}");
        assert!(
            done as f64 > started as f64 * 0.9,
            "done {done} of {started}"
        );
        // Goodput ≈ 3 clients × 20 req/s × 10 kB.
        let rate = tb.client_goodput().mean_rate_between(3.0, 9.0);
        assert!((rate - 600_000.0).abs() < 150_000.0, "rate {rate}");
    }

    // Attack must start at ≥ 5 s or `before_window()` is empty.
    fn tiny_timeline() -> Timeline {
        Timeline {
            total: 16.0,
            attack_start: 5.0,
            attack_stop: 13.0,
        }
    }

    #[test]
    fn matrix_cell_runs_fleet_conn_flood_end_to_end() {
        let matrix = Matrix::new(tiny_timeline())
            .defenses(vec![DefenseSpec::nash()])
            .attacks(vec![FleetAttack::ConnFlood {
                rate: 500.0,
                solve: None,
                conn_timeout: SimDuration::from_secs(1),
                ack_delay: SimDuration::from_millis(500),
            }])
            .fleet_sizes(vec![500])
            .seeds(vec![5])
            .clients(3);
        assert_eq!(matrix.cell_count(), 1);
        let cells = matrix.run();
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.digest.len(), 64);
        assert_eq!(cell.defense, "challenges-k2m17");
        assert_eq!(cell.attack, "conn-flood");
        // The fleet actually attacked…
        assert!(cell.attack_packets > 1_000, "sent {}", cell.attack_packets);
        // …and the clients still got service before the attack.
        assert!(cell.goodput_before > 100_000.0, "{}", cell.goodput_before);
        // Same cell, same seed ⇒ same digest (fleet runs are golden too).
        let again = matrix.run_cell(
            &matrix.defenses[0],
            &matrix.attacks[0],
            matrix.fleet_sizes[0],
            matrix.seeds[0],
        );
        assert_eq!(again.digest, cell.digest);
    }

    /// The acceptance cell for the asymmetric puzzle: under the
    /// standard solving connection flood at *equal attacker hash
    /// budget* — attacker hardware runs each algorithm κ× faster than
    /// the reference client — the κ-adjusted collide difficulty from
    /// the game layer sustains at least the legitimate goodput of the
    /// κ-adjusted prefix difficulty, because equal attacker deterrence
    /// costs honest clients ~12× fewer hashes ((3, 31) ≈ 174 k vs
    /// (2, 21) ≈ 2.1 M).
    #[test]
    fn collide_sustains_goodput_of_prefix_at_equal_attacker_budget() {
        use puzzle_game::{asymptotic_difficulty, select_parameters_for, SelectionPolicy};

        let ell = asymptotic_difficulty(140_630.0, 1.1);
        let timeline = tiny_timeline();
        let attack = FleetAttack::ConnFlood {
            rate: 2_000.0,
            solve: Some(oracle_strategy()),
            conn_timeout: SimDuration::from_secs(1),
            ack_delay: SimDuration::from_millis(500),
        };
        let matrix = Matrix::new(timeline).clients(3);
        let mut during = Vec::new();
        // Collide needs k = 3: at κ·ℓ* the birthday target would take
        // m = 32 at k = 2, past the 32-bit pre-image cap.
        for (algo, fixed_k) in [(AlgoId::Prefix, 2), (AlgoId::Collide, 3)] {
            let kappa = algo.default_attacker_speedup();
            let d = select_parameters_for(algo, ell, kappa, SelectionPolicy::FixedK(fixed_k))
                .expect("difficulty selects");
            let defense = DefenseSpec::puzzles_for(algo, d.k(), d.m());
            let mut s = matrix.cell_scenario(&defense, &attack, 400, 9);
            // Equal hardware budget: the fleet's hash rate is the
            // client reference rate scaled by how far the algorithm
            // yields to attacker acceleration.
            s.bot_fleets[0].hash_rate = kappa * 400_000.0;
            let mut tb = s.build();
            tb.run_until_secs(timeline.total);
            let (a0, a1) = timeline.attack_window();
            during.push(tb.client_goodput().mean_rate_between(a0, a1));
        }
        assert!(
            during[1] >= during[0],
            "collide {:.0} B/s should sustain >= prefix {:.0} B/s",
            during[1],
            during[0]
        );
    }

    #[test]
    fn fleet_syn_flood_collapses_undefended_server() {
        let timeline = tiny_timeline();
        let matrix = Matrix::new(timeline)
            .attacks(vec![FleetAttack::SynFlood {
                rate: 5000.0,
                spoof: true,
            }])
            .clients(3);
        let nodef = matrix.run_cell(&DefenseSpec::none(), &matrix.attacks[0], 1_000, 7);
        let nash = matrix.run_cell(&DefenseSpec::nash(), &matrix.attacks[0], 1_000, 7);
        assert!(nodef.retained() < 0.5, "nodefense {:.2}", nodef.retained());
        assert!(
            nash.retained() > nodef.retained(),
            "nash {:.2} vs nodefense {:.2}",
            nash.retained(),
            nodef.retained()
        );
    }

    #[test]
    fn fleet_replay_flood_captures_and_replays() {
        let timeline = tiny_timeline();
        let matrix = Matrix::new(timeline)
            .attacks(vec![FleetAttack::ReplayFlood {
                rate: 2000.0,
                solve: oracle_strategy(),
            }])
            .clients(3);
        let mut s = matrix.cell_scenario(&DefenseSpec::nash(), &matrix.attacks[0], 300, 3);
        s.server.backlog = 0; // force challenges, so captures have solutions to steal
        let mut tb = s.build();
        tb.run_until_secs(timeline.total);
        let f = tb.bot_fleets().next().expect("fleet");
        let s = f.stats();
        // Every flow starts a capture handshake…
        assert!(s.attempts >= 250, "capture attempts {}", s.attempts);
        // …the challenged ones mint real solutions…
        assert!(s.solves > 0, "captures must solve");
        // …and the pacer then replays them in volume.
        assert!(
            s.packets_sent > s.attempts * 2,
            "replays must dominate: {} packets vs {} attempts",
            s.packets_sent,
            s.attempts
        );
    }

    #[test]
    fn client_fleet_drives_goodput() {
        let timeline = tiny_timeline();
        let mut s = Scenario::standard(9, DefenseSpec::nash(), &timeline);
        s.clients.clear();
        s.client_fleets = vec![ClientFleetParams::population(
            client_fleet_base(0),
            SERVER_IP,
            3,
            SolveBehavior::Solve(oracle_strategy()),
        )];
        let mut tb = s.build();
        tb.run_until_secs(timeline.total);
        let f = tb.client_fleets().next().expect("fleet");
        let stats = f.stats();
        assert!(stats.started > 100, "started {}", stats.started);
        assert!(
            stats.completed as f64 > stats.started as f64 * 0.8,
            "completed {} of {}",
            stats.completed,
            stats.started
        );
        // Goodput ≈ 3 clients × 20 req/s × 10 kB. (No attack here, so the
        // opportunistic controller never challenges — solves stay 0.)
        let rate = tb.client_goodput().mean_rate_between(3.0, 12.0);
        assert!((rate - 600_000.0).abs() < 200_000.0, "rate {rate}");
    }

    #[test]
    fn paper_population_presets() {
        let clients = Scenario::paper_clients(15, true);
        assert_eq!(clients.len(), 15);
        assert_eq!(clients[0].request_rate, 20.0);
        assert_eq!(clients[0].request_size, 10_000);
        let t = Timeline::quick();
        let bots = Scenario::conn_flood_bots(10, 500.0, false, &t);
        assert_eq!(bots.len(), 10);
        let syn = Scenario::syn_flood_bots(10, 500.0, &t);
        assert!(matches!(
            syn[0].kind,
            AttackKind::SynFlood { spoof: true, .. }
        ));
    }
}
