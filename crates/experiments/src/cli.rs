//! Shared command-line parsing for the sweep and live-wire binaries.
//!
//! `matrix_sweep`, `live_server`, and `live_load` all accept the same
//! `--defense` / `--shards` / `--pipeline` vocabulary; this module is
//! the one place that vocabulary is defined. The `parse_*` functions
//! are fallible and unit-tested against the defence registry; the
//! `*_axis` / `*_arg` wrappers are what binaries call — they print the
//! offending value (and, for defences, the registered names) and exit
//! with status 2 on bad input.

use crate::scenario::DefenseSpec;
use puzzle_core::AlgoId;
use tcpstack::ShardPipeline;

/// Parses a comma-separated list of registered defence names via
/// [`DefenseSpec::by_name`] (which also accepts parameterized forms
/// like `syncache-4096` and `puzzles-k2m17`).
///
/// # Errors
///
/// Returns the unknown name together with the registered-name list.
pub fn parse_defense_list(list: &str) -> Result<Vec<DefenseSpec>, String> {
    list.split(',')
        .map(|name| {
            DefenseSpec::by_name(name).ok_or_else(|| {
                format!(
                    "unknown defense {name:?}; registered: {}",
                    DefenseSpec::registered()
                        .iter()
                        .map(|s| s.name().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
        })
        .collect()
}

/// Parses a comma-separated list of puzzle-algorithm names via
/// [`AlgoId::by_name`] (`prefix`, `collide`).
///
/// # Errors
///
/// Returns the unknown name together with the known-algorithm list.
pub fn parse_algo_list(list: &str) -> Result<Vec<AlgoId>, String> {
    list.split(',')
        .map(|name| {
            AlgoId::by_name(name).ok_or_else(|| {
                format!(
                    "unknown algorithm {name:?}; known: {}",
                    AlgoId::ALL
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
        })
        .collect()
}

/// Parses a comma-separated list of unsigned numbers (`--sizes`,
/// `--shards`, `--seeds`).
///
/// # Errors
///
/// Returns the offending element.
pub fn parse_number_list(list: &str) -> Result<Vec<u64>, String> {
    list.split(',')
        .map(|x| {
            x.parse()
                .map_err(|_| format!("expected a comma-separated number list, got {x:?}"))
        })
        .collect()
}

/// Parses a `--pipeline` value: `auto`, `inline`, or `persistent`.
///
/// # Errors
///
/// Returns a message naming the accepted values.
pub fn parse_pipeline(s: &str) -> Result<ShardPipeline, String> {
    match s {
        "auto" => Ok(ShardPipeline::Auto),
        "inline" => Ok(ShardPipeline::Inline),
        "persistent" => Ok(ShardPipeline::Persistent),
        other => Err(format!(
            "unknown --pipeline {other:?}; expected auto, inline, or persistent"
        )),
    }
}

fn exit_on<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    })
}

/// The `--defense` axis: parses the flag's comma list, or falls back to
/// `default` (names resolved through the registry, so a typo in a
/// default is caught too).
pub fn defense_axis(args: &[String], default: &str) -> Vec<DefenseSpec> {
    let list = crate::arg_after(args, "--defense").map_or(default, |s| s.as_str());
    exit_on(parse_defense_list(list))
}

/// The `--algo` axis: parses the flag's comma list. Absent flag means
/// the identity axis (empty — every defence runs exactly as named, so
/// `--defense puzzles-collide` stays collide).
pub fn algo_axis(args: &[String]) -> Vec<AlgoId> {
    crate::arg_after(args, "--algo").map_or_else(Vec::new, |s| exit_on(parse_algo_list(s)))
}

/// A comma-separated number axis (`--sizes`, `--shards`, `--seeds`),
/// with `default` when the flag is absent.
pub fn number_axis(args: &[String], flag: &str, default: &[u64]) -> Vec<u64> {
    crate::arg_after(args, flag).map_or_else(|| default.to_vec(), |s| exit_on(parse_number_list(s)))
}

/// A single-valued unsigned flag (`--shards 4` for the live server,
/// `--rate`, `--seed`), with `default` when absent.
pub fn number_arg(args: &[String], flag: &str, default: u64) -> u64 {
    crate::arg_after(args, flag).map_or(default, |s| {
        exit_on(
            s.parse()
                .map_err(|_| format!("expected a number after {flag}, got {s:?}")),
        )
    })
}

/// The `--pipeline` flag (default [`ShardPipeline::Auto`]).
pub fn pipeline_arg(args: &[String]) -> ShardPipeline {
    crate::arg_after(args, "--pipeline").map_or(ShardPipeline::Auto, |s| exit_on(parse_pipeline(s)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every name the registry exposes must round-trip through the
    /// shared `--defense` parser — the live binaries advertise "any
    /// registered defence" and this is that promise.
    #[test]
    fn every_registered_name_parses() {
        for spec in DefenseSpec::registered() {
            let parsed = parse_defense_list(spec.name())
                .unwrap_or_else(|e| panic!("registered name {:?} failed: {e}", spec.name()));
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].name(), spec.name());
        }
    }

    #[test]
    fn comma_lists_and_parameterized_forms_parse() {
        let specs = parse_defense_list("none,syncache-4096,puzzles-k2m17,stateless-puzzles")
            .expect("list parses");
        assert_eq!(specs.len(), 4);
        // Parameterized forms resolve to the base name with the
        // parameter carried in the label.
        assert_eq!(specs[1].name(), "syncache");
        assert_eq!(specs[1].label(), "syncache-4096");
    }

    #[test]
    fn unknown_defense_reports_registry() {
        let err = parse_defense_list("nash,bogus").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        // The error teaches the vocabulary: it lists registered names.
        assert!(err.contains("syncache"), "{err}");
        assert!(err.contains("stateless-puzzles"), "{err}");
    }

    #[test]
    fn lax_numeric_suffixes_are_rejected_not_silently_parsed() {
        // `str::parse` accepts a leading `+`, so these used to slip
        // through `--defense` as surprise capacities/difficulties.
        for bad in ["syncache-+4096", "puzzles-k+2m17", "challenges-k2m+17"] {
            let err = parse_defense_list(bad).unwrap_err();
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn algo_lists() {
        assert_eq!(
            parse_algo_list("prefix,collide").unwrap(),
            vec![AlgoId::Prefix, AlgoId::Collide]
        );
        let err = parse_algo_list("prefix,equihash").unwrap_err();
        assert!(err.contains("equihash"), "{err}");
        assert!(err.contains("collide"), "{err}");
    }

    #[test]
    fn number_lists() {
        assert_eq!(parse_number_list("1,4,16").unwrap(), vec![1, 4, 16]);
        assert!(parse_number_list("1,x").is_err());
    }

    #[test]
    fn pipeline_names() {
        assert_eq!(parse_pipeline("auto").unwrap(), ShardPipeline::Auto);
        assert_eq!(parse_pipeline("inline").unwrap(), ShardPipeline::Inline);
        assert_eq!(
            parse_pipeline("persistent").unwrap(),
            ShardPipeline::Persistent
        );
        assert!(parse_pipeline("tokio").is_err());
    }
}
