//! Figure 10: listen and accept queue occupancy during a connection
//! flood — challenges vs cookies.
//!
//! Shape targets (paper): with cookies both queues saturate; with
//! challenges the accept queue is almost always empty while the listen
//! queue stays mostly full with periodic openings.

use std::fmt;

use simmetrics::{SampleSeries, Table};

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// Queue traces for one defence.
#[derive(Clone, Debug)]
pub struct QueueTrace {
    /// Defence label.
    pub label: String,
    /// Listen-queue samples (1 Hz).
    pub listen: SampleSeries,
    /// Accept-queue samples (1 Hz).
    pub accept: SampleSeries,
    /// Mean listen depth during the attack.
    pub listen_mean: f64,
    /// Mean accept depth during the attack.
    pub accept_mean: f64,
}

/// The full Figure 10 result.
#[derive(Clone, Debug)]
pub struct Fig10Result {
    /// Cookies first, then challenges (paper order).
    pub traces: Vec<QueueTrace>,
    /// Listen backlog capacity in the runs.
    pub backlog: usize,
    /// Accept backlog capacity in the runs.
    pub accept_backlog: usize,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Runs the Figure 10 measurement.
pub fn run(seed: u64, full: bool) -> Fig10Result {
    run_with(seed, Timeline::from_full_flag(full), 10, 500.0)
}

/// Parameterized variant.
pub fn run_with(seed: u64, timeline: Timeline, bots: usize, rate: f64) -> Fig10Result {
    let (a0, a1) = timeline.attack_window();
    let mut traces = Vec::new();
    let mut backlog = 0;
    let mut accept_backlog = 0;
    for defense in [DefenseSpec::nash(), DefenseSpec::cookies()] {
        let label = defense.label();
        let mut scenario = Scenario::standard(seed, defense, &timeline);
        scenario.attackers = Scenario::conn_flood_bots(bots, rate, false, &timeline);
        backlog = scenario.server.backlog;
        accept_backlog = scenario.server.accept_backlog;
        let mut tb = scenario.build();
        tb.run_until_secs(timeline.total);
        let m = tb.server_metrics();
        traces.push(QueueTrace {
            label,
            listen_mean: m.listen_depth.mean_between(a0, a1),
            accept_mean: m.accept_depth.mean_between(a0, a1),
            listen: m.listen_depth.clone(),
            accept: m.accept_depth.clone(),
        });
    }
    Fig10Result {
        traces,
        backlog,
        accept_backlog,
        timeline,
    }
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10 — queue occupancy during connection flood \
             (backlog {}, accept backlog {})",
            self.backlog, self.accept_backlog
        )?;
        let mut t = Table::new(vec![
            "defense",
            "listen mean",
            "listen fill",
            "accept mean",
            "accept fill",
        ]);
        for tr in &self.traces {
            t.row(vec![
                tr.label.clone(),
                format!("{:.0}", tr.listen_mean),
                format!("{:.0}%", tr.listen_mean / self.backlog as f64 * 100.0),
                format!("{:.0}", tr.accept_mean),
                format!(
                    "{:.0}%",
                    tr.accept_mean / self.accept_backlog as f64 * 100.0
                ),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: cookies -> both queues saturated; challenges -> accept\n\
             queue almost always empty, listen queue mostly saturated with openings"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_shapes_match_paper() {
        let r = run_with(51, Timeline::smoke(), 10, 500.0);
        let nash = &r.traces[0];
        let cookies = &r.traces[1];
        assert!(nash.label.contains("k2m17"));
        // Challenges: accept queue near empty.
        assert!(
            nash.accept_mean < 0.15 * r.accept_backlog as f64,
            "nash accept {:.0}",
            nash.accept_mean
        );
        // Cookies: both queues under sustained pressure once the flood
        // exhausts the application's connection slots.
        assert!(
            cookies.accept_mean > 0.4 * r.accept_backlog as f64,
            "cookies accept {:.0}",
            cookies.accept_mean
        );
        assert!(
            cookies.listen_mean > 0.5 * r.backlog as f64,
            "cookies listen {:.0}",
            cookies.listen_mean
        );
        // And cookies' accept pressure dwarfs the challenges case.
        assert!(
            cookies.accept_mean > 4.0 * nash.accept_mean.max(1.0),
            "cookies {:.0} vs nash {:.0}",
            cookies.accept_mean,
            nash.accept_mean
        );
    }
}
