//! Figure 7: throughput at a client and the server during a SYN flood.
//!
//! 15 solving clients at 20 req/s × 10 kB; 10 bots flooding spoofed SYNs
//! at 500 pps each; defences: none, SYN cookies, easy puzzles (1, 8), and
//! Nash puzzles (2, 17).
//!
//! Shape targets (paper): no-defense throughput collapses to ~0 during
//! the attack and recovers ~30 s after it ends; cookies and easy puzzles
//! are unaffected; Nash puzzles reduce but sustain throughput.

use std::fmt;

use simmetrics::{IntervalSeries, Table};

use crate::scenario::{DefenseSpec, Scenario, Testbed, Timeline};

/// Per-defence outcome.
#[derive(Clone, Debug)]
pub struct DefenseOutcome {
    /// Defence label.
    pub label: String,
    /// Aggregate client goodput series (B/s bins).
    pub client_series: IntervalSeries,
    /// Server application-send series (B/s bins).
    pub server_series: IntervalSeries,
    /// Mean client goodput before the attack (B/s).
    pub before: f64,
    /// Mean client goodput during the attack (B/s).
    pub during: f64,
    /// Seconds after attack stop until goodput first sustains ≥ 70% of
    /// the pre-attack mean (`None` if it never recovers in-run).
    pub recovery_secs: Option<f64>,
}

impl DefenseOutcome {
    /// Throughput retained during the attack, as a fraction of nominal.
    pub fn retained(&self) -> f64 {
        if self.before <= 0.0 {
            return 0.0;
        }
        self.during / self.before
    }
}

/// The full Figure 7 result.
#[derive(Clone, Debug)]
pub struct Fig07Result {
    /// One outcome per defence, in run order.
    pub outcomes: Vec<DefenseOutcome>,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Runs one defended scenario under the given attack set and reduces it
/// to a [`DefenseOutcome`]. Shared by Figs. 7 and 8.
pub(crate) fn run_defended(
    seed: u64,
    defense: DefenseSpec,
    timeline: &Timeline,
    attackers: Vec<hostsim::AttackerParams>,
    n_clients: usize,
) -> (DefenseOutcome, Testbed) {
    let label = defense.label();
    let mut scenario = Scenario::standard(seed, defense, timeline);
    scenario.clients = Scenario::paper_clients(n_clients, true);
    scenario.attackers = attackers;
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);

    let client_series = tb.client_goodput();
    let server_series = tb.server_metrics().bytes_tx.clone();
    let (b0, b1) = timeline.before_window();
    let (a0, a1) = timeline.attack_window();
    let before = client_series.mean_rate_between(b0, b1);
    let during = client_series.mean_rate_between(a0, a1);

    // Recovery: the first post-attack second whose goodput reaches 70% of
    // the nominal rate. (Our clients retransmit SYNs with 1-2-4 s backoff,
    // so an undefended server recovers within a few seconds of the flood
    // ending; the paper reports ~30 s — see EXPERIMENTS.md.)
    let recovery = client_series
        .rates()
        .into_iter()
        .find(|(t, v)| *t >= timeline.attack_stop && *v >= 0.7 * before)
        .map(|(t, _)| t - timeline.attack_stop);

    (
        DefenseOutcome {
            label,
            client_series,
            server_series,
            before,
            during,
            recovery_secs: recovery,
        },
        tb,
    )
}

/// Runs the full Figure 7 comparison.
pub fn run(seed: u64, full: bool) -> Fig07Result {
    run_with(seed, Timeline::from_full_flag(full), 10, 500.0)
}

/// Fleet-scale variant: the same defence axis driven by one aggregated
/// [`hostsim::BotFleet`] instead of per-host bots, through the shared
/// [`crate::scenario::Matrix`] entry point. `rate` is the *aggregate*
/// SYN rate. Scales to 10⁵–10⁶ flows where the per-host testbed tops
/// out at a few hundred bots.
pub fn run_fleet(
    seed: u64,
    timeline: Timeline,
    flows: usize,
    rate: f64,
) -> Vec<crate::scenario::MatrixCell> {
    crate::scenario::Matrix::new(timeline)
        .defenses(vec![
            DefenseSpec::none(),
            DefenseSpec::cookies(),
            DefenseSpec::puzzles(1, 8),
            DefenseSpec::nash(),
        ])
        .attacks(vec![hostsim::FleetAttack::SynFlood { rate, spoof: true }])
        .fleet_sizes(vec![flows])
        .seeds(vec![seed])
        .run()
}

/// Parameterized variant (used by tests with smaller botnets).
pub fn run_with(seed: u64, timeline: Timeline, bots: usize, rate: f64) -> Fig07Result {
    let defenses = [
        DefenseSpec::none(),
        DefenseSpec::cookies(),
        DefenseSpec::puzzles(1, 8),
        DefenseSpec::nash(),
    ];
    let outcomes = defenses
        .into_iter()
        .map(|d| {
            let attackers = Scenario::syn_flood_bots(bots, rate, &timeline);
            run_defended(seed, d, &timeline, attackers, 15).0
        })
        .collect();
    Fig07Result { outcomes, timeline }
}

impl fmt::Display for Fig07Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — throughput during SYN flood (attack window [{}, {}) of {} s)",
            self.timeline.attack_start, self.timeline.attack_stop, self.timeline.total
        )?;
        let mut t = Table::new(vec![
            "defense",
            "before (kB/s)",
            "during (kB/s)",
            "retained",
            "recovery (s)",
        ]);
        for o in &self.outcomes {
            t.row(vec![
                o.label.clone(),
                format!("{:.0}", o.before / 1e3),
                format!("{:.0}", o.during / 1e3),
                format!("{:.0}%", o.retained() * 100.0),
                o.recovery_secs
                    .map(|r| format!("{r:.0}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: nodefense -> 0 with ~30 s recovery; cookies ~100%;\n\
             challenges-m8 ~100%; challenges-m17 reduced but sustained (~20-50%)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_flood_shapes_match_paper() {
        // Smoke-scale: 3 bots at 1700 pps ≈ the paper's aggregate 5000.
        let r = run_with(21, Timeline::smoke(), 3, 1700.0);
        let by_label = |l: &str| {
            r.outcomes
                .iter()
                .find(|o| o.label.contains(l))
                .expect("present")
        };
        let nodef = by_label("nodefense");
        let cookies = by_label("cookies");
        let easy = by_label("k1m8");
        let nash = by_label("k2m17");

        assert!(nodef.retained() < 0.2, "nodefense {:.2}", nodef.retained());
        assert!(
            cookies.retained() > 0.8,
            "cookies {:.2}",
            cookies.retained()
        );
        assert!(easy.retained() > 0.8, "easy {:.2}", easy.retained());
        assert!(
            nash.retained() > 0.05 && nash.retained() < 0.9,
            "nash {:.2}",
            nash.retained()
        );
        // Collapse ordering: nodefense is the worst.
        assert!(nodef.retained() < nash.retained());
    }
}
