//! §7 "Solution floods": an attacker barrages the server with bogus
//! solutions to burn verification CPU.
//!
//! The paper argues this is hopeless: verification costs ~2 hashes
//! (pre-image recomputation + the first failing sub-solution) against a
//! 10.8 MH/s server, so saturating the verifier needs ~5.4 M packets/s —
//! a full-blown volumetric attack, outside the puzzles' threat model.

use std::fmt;

use netsim::SimTime;
use simmetrics::Table;

use crate::scenario::{DefenseSpec, Scenario, Timeline, SERVER_IP, SERVER_PORT};
use hostsim::profiles::SERVER_HASH_RATE;
use hostsim::{AttackKind, AttackerParams};

/// One flood-rate measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FloodPoint {
    /// Bogus-solution packets per second.
    pub rate_pps: f64,
    /// Verification failures recorded per second.
    pub rejects_per_sec: f64,
    /// Peak server CPU utilization during the flood.
    pub server_cpu_max: f64,
    /// Forged solutions that were admitted (must be 0).
    pub admitted: u64,
}

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct SolutionFloodResult {
    /// Measured points.
    pub points: Vec<FloodPoint>,
    /// Analytic saturation rate: hash_rate / hashes-per-verification.
    pub saturation_pps: f64,
}

/// Measures one flood rate.
pub fn measure(seed: u64, rate: f64, timeline: &Timeline) -> FloodPoint {
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), timeline);
    scenario.server.backlog = 0; // puzzles always on
    scenario.attackers = vec![AttackerParams {
        addr: crate::scenario::attacker_addr(0),
        target_addr: SERVER_IP,
        target_port: SERVER_PORT,
        kind: AttackKind::SolutionFlood {
            rate,
            k: 2,
            sol_len: 4,
        },
        hash_rate: 400_000.0,
        start: SimTime::from_secs_f64(timeline.attack_start),
        stop: SimTime::from_secs_f64(timeline.attack_stop),
    }];
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);
    let (a0, a1) = timeline.attack_window();
    let stats = tb.server().listener_stats();
    // Forgery admissions are establishments attributed to the attacker's
    // address (solving clients legitimately establish via puzzles too).
    let admitted = tb
        .server_metrics()
        .established_rate_for(tb.attacker_addrs(), 1.0)
        .total() as u64;
    FloodPoint {
        rate_pps: rate,
        rejects_per_sec: stats.verify_failures as f64
            / (timeline.attack_stop - timeline.attack_start),
        server_cpu_max: tb.server_metrics().cpu_util.max_between(a0, a1),
        admitted,
    }
}

/// Runs the flood-rate sweep plus the analytic saturation bound.
pub fn run(seed: u64, full: bool) -> SolutionFloodResult {
    let timeline = if full {
        Timeline::quick()
    } else {
        Timeline::smoke()
    };
    let rates: &[f64] = if full {
        &[1000.0, 5000.0, 10_000.0, 20_000.0]
    } else {
        &[2000.0, 10_000.0]
    };
    let points = rates
        .iter()
        .map(|&r| measure(seed ^ r as u64, r, &timeline))
        .collect();
    SolutionFloodResult {
        points,
        // d(p) ≈ 2 hashes per rejected verification.
        saturation_pps: SERVER_HASH_RATE / 2.0,
    }
}

impl fmt::Display for SolutionFloodResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Solution-flood resistance (§7)")?;
        let mut t = Table::new(vec![
            "flood rate (pps)",
            "rejects/s",
            "server CPU max",
            "forgeries admitted",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.0}", p.rate_pps),
                format!("{:.0}", p.rejects_per_sec),
                format!("{:.2}%", p.server_cpu_max * 100.0),
                p.admitted.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "analytic saturation: {:.1e} pps needed to saturate verification\n\
             (paper: \"an attacker ... would need to send at least 5,400,000 packets per second\")",
            self.saturation_pps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgeries_never_admitted_and_cpu_negligible() {
        let t = Timeline::smoke();
        let p = measure(121, 3000.0, &t);
        assert_eq!(p.admitted, 0);
        assert!(
            p.rejects_per_sec > 1000.0,
            "rejects {:.0}",
            p.rejects_per_sec
        );
        assert!(p.server_cpu_max < 0.05, "cpu {:.3}", p.server_cpu_max);
    }

    #[test]
    fn saturation_matches_paper_arithmetic() {
        let r = SolutionFloodResult {
            points: vec![],
            saturation_pps: SERVER_HASH_RATE / 2.0,
        };
        assert!((r.saturation_pps - 5.4e6).abs() < 1.0);
    }
}
