//! Figure 12: client throughput across puzzle difficulties during a
//! connection flood (box plots), plus §6.3's attacker-side comparison.
//!
//! Shape targets (paper): difficulties with `m < 12` fail to throttle the
//! (solving) attackers and service collapses; the Nash setting `(2, 17)`
//! yields the most stable throughput; neighbouring settings trade mean
//! for variance.

use std::fmt;

use simmetrics::{BoxStats, Table};

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// One grid cell of the sweep.
#[derive(Clone, Debug)]
pub struct DifficultyCell {
    /// Sub-solutions per challenge.
    pub k: u8,
    /// Difficulty bits.
    pub m: u8,
    /// Box statistics of per-second aggregate client goodput during the
    /// attack (B/s).
    pub throughput: BoxStats,
    /// Attackers' mean SYN send rate during the attack (pps).
    pub attacker_pps: f64,
    /// Attackers' mean established rate during the attack (cps).
    pub attacker_cps: f64,
}

/// The full Figure 12 result.
#[derive(Clone, Debug)]
pub struct Fig12Result {
    /// Grid cells in sweep order.
    pub cells: Vec<DifficultyCell>,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Measures one difficulty cell.
pub fn measure(
    seed: u64,
    k: u8,
    m: u8,
    timeline: &Timeline,
    bots: usize,
    rate: f64,
) -> DifficultyCell {
    let mut scenario = Scenario::standard(seed, DefenseSpec::puzzles(k, m), timeline);
    // §6.3 keeps the connection flood with attackers that solve
    // (their establishment rate is part of the reported comparison).
    scenario.attackers = Scenario::conn_flood_bots(bots, rate, true, timeline);
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);

    let (a0, a1) = timeline.attack_window();
    let goodput = tb.client_goodput();
    let samples: Vec<f64> = goodput
        .rates()
        .into_iter()
        .filter(|(t, _)| *t >= a0 && *t < a1)
        .map(|(_, v)| v)
        .collect();
    let attacker_pps = tb.attacker_packet_rate().mean_rate_between(a0, a1);
    let attacker_cps = tb
        .server_metrics()
        .established_rate_for(tb.attacker_addrs(), 1.0)
        .mean_rate_between(a0, a1);
    DifficultyCell {
        k,
        m,
        throughput: BoxStats::of(&samples),
        attacker_pps,
        attacker_cps,
    }
}

/// Runs the full sweep `k ∈ {1..4} × m ∈ {12, 15, 16, 17, 18, 20}`,
/// parallelized across threads (each run is an independent simulation).
pub fn run(seed: u64, full: bool) -> Fig12Result {
    let timeline = Timeline::from_full_flag(full);
    run_grid(
        seed,
        &timeline,
        &[1, 2, 3, 4],
        &[12, 15, 16, 17, 18, 20],
        10,
        500.0,
    )
}

/// Parameterized grid sweep.
pub fn run_grid(
    seed: u64,
    timeline: &Timeline,
    ks: &[u8],
    ms: &[u8],
    bots: usize,
    rate: f64,
) -> Fig12Result {
    let pairs: Vec<(u8, u8)> = ks
        .iter()
        .flat_map(|&k| ms.iter().map(move |&m| (k, m)))
        .collect();
    let cells = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .iter()
            .map(|&(k, m)| {
                let timeline = *timeline;
                scope.spawn(move || {
                    measure(
                        seed ^ ((k as u64) << 8 | m as u64),
                        k,
                        m,
                        &timeline,
                        bots,
                        rate,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect::<Vec<_>>()
    });
    Fig12Result {
        cells,
        timeline: *timeline,
    }
}

impl Fig12Result {
    /// The cell for a given difficulty, if present.
    pub fn cell(&self, k: u8, m: u8) -> Option<&DifficultyCell> {
        self.cells.iter().find(|c| c.k == k && c.m == m)
    }

    /// Coefficient of variation of throughput for a cell (stability
    /// proxy: the paper highlights the Nash cell's low variability).
    pub fn stability(&self, cell: &DifficultyCell) -> f64 {
        let spread = cell.throughput.q3 - cell.throughput.q1;
        if cell.throughput.median <= 0.0 {
            f64::INFINITY
        } else {
            spread / cell.throughput.median
        }
    }
}

impl fmt::Display for Fig12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 12 — client throughput by difficulty (connection flood)"
        )?;
        let mut t = Table::new(vec![
            "k",
            "m",
            "median (kB/s)",
            "q1",
            "q3",
            "whisker lo",
            "whisker hi",
            "atk pps",
            "atk cps",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.k.to_string(),
                c.m.to_string(),
                format!("{:.0}", c.throughput.median / 1e3),
                format!("{:.0}", c.throughput.q1 / 1e3),
                format!("{:.0}", c.throughput.q3 / 1e3),
                format!("{:.0}", c.throughput.whisker_low / 1e3),
                format!("{:.0}", c.throughput.whisker_high / 1e3),
                format!("{:.0}", c.attacker_pps),
                format!("{:.1}", c.attacker_cps),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: m < 12 -> collapse; Nash (2,17) most stable (~3.9 Mbps mean,\n\
             low variance); (2,16): higher mean, more variance; attacker 2250 pps/30 cps at\n\
             (2,16) vs 1668 pps/22 cps at Nash"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_puzzles_fail_to_throttle_nash_does() {
        let t = Timeline::smoke();
        let r = run_grid(71, &t, &[2], &[8, 17], 3, 800.0);
        let easy = r.cell(2, 8).expect("cell");
        let nash = r.cell(2, 17).expect("cell");
        // §6.3: easy puzzles leave the solving attackers admission-bound
        // (the worker-pool ceiling); the Nash difficulty leaves them
        // CPU-bound, clearly lower. (The paper's own Fig. 12 numbers show
        // a moderate cps gap between neighbouring settings — 30 vs 22 —
        // and a collapse in *client* service at low difficulty.)
        assert!(
            easy.attacker_cps > 15.0,
            "easy {:.1} cps",
            easy.attacker_cps
        );
        assert!(
            easy.attacker_cps > 2.0 * nash.attacker_cps.max(0.1),
            "easy {:.1} cps vs nash {:.1} cps",
            easy.attacker_cps,
            nash.attacker_cps
        );
        // Client service: better and never zero at the Nash setting.
        assert!(
            nash.throughput.median > easy.throughput.median,
            "nash median {:.0} vs easy {:.0}",
            nash.throughput.median,
            easy.throughput.median
        );
        assert!(
            nash.throughput.q1 > 0.0,
            "nash q1 {:.0}",
            nash.throughput.q1
        );
    }
}
