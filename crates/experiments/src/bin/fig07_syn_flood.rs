//! Regenerates Figure 7 (SYN flood throughput).
//!
//! Usage: `cargo run --release -p experiments --bin fig07_syn_flood [-- --full] [--seed N] [--fleet FLOWS]`
//! `--full` uses the paper's 600 s timeline instead of the compressed one.
//! `--fleet FLOWS` swaps the per-host botnet for one aggregated fleet of
//! that many flows (the `scenario::Matrix` fleet-scale path).

fn main() {
    experiments::report_backend();
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let seed = experiments::arg_after(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    if let Some(raw) = experiments::arg_after(&args, "--fleet") {
        let flows: usize = raw.parse().unwrap_or_else(|_| {
            eprintln!("--fleet expects a flow count, got {raw:?}");
            std::process::exit(2);
        });
        let timeline = experiments::Timeline::from_full_flag(full);
        for cell in experiments::fig07::run_fleet(seed, timeline, flows, 5000.0) {
            println!("{cell}");
        }
        return;
    }
    let result = experiments::fig07::run(seed, full);
    println!("{result}");
}
