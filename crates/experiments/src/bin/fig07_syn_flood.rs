//! Regenerates Figure 7 (SYN flood throughput).
//!
//! Usage: `cargo run --release -p experiments --bin fig07_syn_flood [-- --full] [--seed N]`
//! `--full` uses the paper's 600 s timeline instead of the compressed one.

fn main() {
    experiments::report_backend();
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let result = experiments::fig07::run(seed, full);
    println!("{result}");
}
