//! Runs a `scenario::Matrix` sweep: {defense × attack × fleet size ×
//! seed}, one goodput summary + digest per cell.
//!
//! Usage:
//!   cargo run --release -p experiments --bin matrix_sweep \
//!     [-- --full] [--defense none,cookies,nash,adaptive,stacked] \
//!     [--algo prefix,collide] [--sizes 1000,100000] [--shards 1,4] \
//!     [--pipeline auto] [--seeds 1,2] [--rate 20000]
//!
//! `--defense` sweeps registered defence specs by name
//! (`DefenseSpec::by_name`): `none`, `syncache[-<cap>]`, `cookies`,
//! `nash`, `puzzles-k<k>m<m>`, `adaptive`, `stacked`,
//! `puzzles-collide`, `stateless-collide`, `collide-k<k>m<m>`.
//! `--algo` sweeps the puzzle-algorithm axis: each puzzle defence is
//! re-posed per listed algorithm at equal attacker cost
//! (`DefenseSpec::for_algo`); when absent, every defence runs exactly
//! as named. `--shards` sweeps
//! the server's RSS-style listener-shard count (each value rounds up to
//! a power of two; default 1). `--pipeline auto|inline|persistent`
//! picks how multi-shard cells step their shards (default `auto`;
//! digests are pipeline-invariant, so this changes wall-clock, never
//! results — `persistent` exercises the worker pipeline even on one
//! core). Defaults sweep {nodefense, cookies, nash} × {syn-flood,
//! conn-flood} × {1k, 10k} flows × 1 shard × seed 1 on the compressed
//! timeline.

use experiments::cli;
use experiments::scenario::{Matrix, Timeline};
use hostsim::FleetAttack;
use netsim::SimDuration;

fn main() {
    experiments::report_backend();
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let sizes: Vec<usize> = cli::number_axis(&args, "--sizes", &[1_000, 10_000])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let shards: Vec<usize> = cli::number_axis(&args, "--shards", &[1])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let pipeline = cli::pipeline_arg(&args);
    let seeds = cli::number_axis(&args, "--seeds", &[1]);
    let rate: f64 = experiments::arg_after(&args, "--rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000.0);
    let defenses = cli::defense_axis(&args, "none,cookies,nash");
    let algos = cli::algo_axis(&args);

    let matrix = Matrix::new(Timeline::from_full_flag(full))
        .defenses(defenses)
        .algos(algos)
        .attacks(vec![
            FleetAttack::SynFlood { rate, spoof: true },
            FleetAttack::ConnFlood {
                rate,
                solve: None,
                conn_timeout: SimDuration::from_secs(1),
                ack_delay: SimDuration::from_millis(500),
            },
        ])
        .fleet_sizes(sizes)
        .shards(shards)
        .pipeline(pipeline)
        .seeds(seeds);

    eprintln!("running {} cells…", matrix.cell_count());
    for cell in matrix.run() {
        println!("{cell}");
    }
}
