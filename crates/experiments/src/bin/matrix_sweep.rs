//! Runs a `scenario::Matrix` sweep: {defense × attack × fleet size ×
//! seed}, one goodput summary + digest per cell.
//!
//! Usage:
//!   cargo run --release -p experiments --bin matrix_sweep \
//!     [-- --full] [--defense none,cookies,nash,adaptive,stacked] \
//!     [--sizes 1000,100000] [--shards 1,4] [--pipeline auto] \
//!     [--seeds 1,2] [--rate 20000]
//!
//! `--defense` sweeps registered defence specs by name
//! (`DefenseSpec::by_name`): `none`, `syncache[-<cap>]`, `cookies`,
//! `nash`, `puzzles-k<k>m<m>`, `adaptive`, `stacked`. `--shards` sweeps
//! the server's RSS-style listener-shard count (each value rounds up to
//! a power of two; default 1). `--pipeline auto|inline|persistent`
//! picks how multi-shard cells step their shards (default `auto`;
//! digests are pipeline-invariant, so this changes wall-clock, never
//! results — `persistent` exercises the worker pipeline even on one
//! core). Defaults sweep {nodefense, cookies, nash} × {syn-flood,
//! conn-flood} × {1k, 10k} flows × 1 shard × seed 1 on the compressed
//! timeline.

use experiments::scenario::{DefenseSpec, Matrix, Timeline};
use hostsim::FleetAttack;
use netsim::SimDuration;

fn main() {
    experiments::report_backend();
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let parse_list = |s: &String| -> Vec<u64> {
        s.split(',')
            .map(|x| {
                x.parse().unwrap_or_else(|_| {
                    eprintln!("expected a comma-separated number list, got {x:?} in {s:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let sizes: Vec<usize> = experiments::arg_after(&args, "--sizes")
        .map(parse_list)
        .unwrap_or_else(|| vec![1_000, 10_000])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let shards: Vec<usize> = experiments::arg_after(&args, "--shards")
        .map(parse_list)
        .unwrap_or_else(|| vec![1])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let pipeline = match experiments::arg_after(&args, "--pipeline").map(|s| s.as_str()) {
        None | Some("auto") => tcpstack::ShardPipeline::Auto,
        Some("inline") => tcpstack::ShardPipeline::Inline,
        Some("persistent") => tcpstack::ShardPipeline::Persistent,
        Some(other) => {
            eprintln!("unknown --pipeline {other:?}; expected auto, inline, or persistent");
            std::process::exit(2);
        }
    };
    let seeds = experiments::arg_after(&args, "--seeds")
        .map(parse_list)
        .unwrap_or_else(|| vec![1]);
    let rate: f64 = experiments::arg_after(&args, "--rate")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000.0);
    let defenses: Vec<DefenseSpec> = experiments::arg_after(&args, "--defense")
        .map(|list| {
            list.split(',')
                .map(|name| {
                    DefenseSpec::by_name(name).unwrap_or_else(|| {
                        eprintln!(
                            "unknown defense {name:?}; registered: {}",
                            DefenseSpec::registered()
                                .iter()
                                .map(|s| s.name().to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| {
            vec![
                DefenseSpec::none(),
                DefenseSpec::cookies(),
                DefenseSpec::nash(),
            ]
        });

    let matrix = Matrix::new(Timeline::from_full_flag(full))
        .defenses(defenses)
        .attacks(vec![
            FleetAttack::SynFlood { rate, spoof: true },
            FleetAttack::ConnFlood {
                rate,
                solve: None,
                conn_timeout: SimDuration::from_secs(1),
                ack_delay: SimDuration::from_millis(500),
            },
        ])
        .fleet_sizes(sizes)
        .shards(shards)
        .pipeline(pipeline)
        .seeds(seeds);

    eprintln!("running {} cells…", matrix.cell_count());
    for cell in matrix.run() {
        println!("{cell}");
    }
}
