//! Figure 8: throughput at a client and the server during a connection
//! flood, plus the challenge/plain SYN-ACK sparkline.
//!
//! Shape targets (paper): both no-defense and SYN cookies collapse to ~0
//! (cookies do not protect the accept queue); Nash puzzles sustain a
//! sizeable fraction of nominal throughput, with periodic spikes from the
//! opportunistic controller's openings.

use std::fmt;

use simmetrics::Table;

use crate::fig07::{run_defended, DefenseOutcome};
use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// Figure 8 outcome: per-defence throughput plus sparkline rates.
#[derive(Clone, Debug)]
pub struct Fig08Result {
    /// One outcome per defence.
    pub outcomes: Vec<DefenseOutcome>,
    /// Mean challenged SYN-ACKs/s during the attack, per defence.
    pub challenge_rates: Vec<f64>,
    /// Mean plain SYN-ACKs/s during the attack, per defence (the dark
    /// sparkline ticks: openings).
    pub plain_rates: Vec<f64>,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Runs the full Figure 8 comparison.
pub fn run(seed: u64, full: bool) -> Fig08Result {
    run_with(seed, Timeline::from_full_flag(full), 10, 500.0)
}

/// Fleet-scale variant: the same defence axis under one aggregated
/// connection-flood [`hostsim::BotFleet`], through the shared
/// [`crate::scenario::Matrix`] entry point. `rate` is the *aggregate*
/// attempt rate; concurrency is bounded by `flows`.
pub fn run_fleet(
    seed: u64,
    timeline: Timeline,
    flows: usize,
    rate: f64,
) -> Vec<crate::scenario::MatrixCell> {
    crate::scenario::Matrix::new(timeline)
        .defenses(vec![
            DefenseSpec::none(),
            DefenseSpec::cookies(),
            DefenseSpec::nash(),
        ])
        .attacks(vec![hostsim::FleetAttack::ConnFlood {
            rate,
            solve: None,
            conn_timeout: netsim::SimDuration::from_secs(1),
            ack_delay: netsim::SimDuration::from_millis(500),
        }])
        .fleet_sizes(vec![flows])
        .seeds(vec![seed])
        .run()
}

/// Parameterized variant (tests use smaller botnets).
pub fn run_with(seed: u64, timeline: Timeline, bots: usize, rate: f64) -> Fig08Result {
    let defenses = [
        DefenseSpec::none(),
        DefenseSpec::cookies(),
        DefenseSpec::nash(),
    ];
    let mut outcomes = Vec::new();
    let mut challenge_rates = Vec::new();
    let mut plain_rates = Vec::new();
    let (a0, a1) = timeline.attack_window();
    for d in defenses {
        let attackers = Scenario::conn_flood_bots(bots, rate, false, &timeline);
        let (outcome, tb) = run_defended(seed, d, &timeline, attackers, 15);
        challenge_rates.push(tb.server_metrics().challenge_rate.mean_between(a0, a1));
        plain_rates.push(tb.server_metrics().plain_synack_rate.mean_between(a0, a1));
        outcomes.push(outcome);
    }
    Fig08Result {
        outcomes,
        challenge_rates,
        plain_rates,
        timeline,
    }
}

impl fmt::Display for Fig08Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8 — throughput during connection flood (attack window [{}, {}) of {} s)",
            self.timeline.attack_start, self.timeline.attack_stop, self.timeline.total
        )?;
        let mut t = Table::new(vec![
            "defense",
            "before (kB/s)",
            "during (kB/s)",
            "retained",
            "challenges/s",
            "plain synacks/s",
        ]);
        for (i, o) in self.outcomes.iter().enumerate() {
            t.row(vec![
                o.label.clone(),
                format!("{:.0}", o.before / 1e3),
                format!("{:.0}", o.during / 1e3),
                format!("{:.0}%", o.retained() * 100.0),
                format!("{:.0}", self.challenge_rates[i]),
                format!("{:.0}", self.plain_rates[i]),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: nodefense ~0; cookies ~0; challenges-m17 ~40% of nominal\n\
             with periodic spikes (openings: plain SYN-ACKs during the attack)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_flood_shapes_match_paper() {
        let r = run_with(31, Timeline::smoke(), 10, 500.0);
        let by_label = |l: &str| {
            let i = r
                .outcomes
                .iter()
                .position(|o| o.label.contains(l))
                .expect("present");
            (&r.outcomes[i], r.challenge_rates[i])
        };
        let (nodef, _) = by_label("nodefense");
        let (cookies, _) = by_label("cookies");
        let (nash, nash_challenges) = by_label("k2m17");

        assert!(nodef.retained() < 0.4, "nodefense {:.2}", nodef.retained());
        assert!(
            cookies.retained() < 0.4,
            "cookies {:.2}",
            cookies.retained()
        );
        assert!(
            nash.retained() > 1.4 * cookies.retained().max(0.05),
            "nash {:.2} vs cookies {:.2}",
            nash.retained(),
            cookies.retained()
        );
        assert!(nash.retained() > 0.08, "nash floor {:.2}", nash.retained());
        // The sparkline shows challenges flowing during the attack.
        assert!(nash_challenges > 100.0, "challenge rate {nash_challenges}");
    }
}
