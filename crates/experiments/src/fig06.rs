//! Figure 6: CDF of connection time as `(k, m)` vary.
//!
//! One client connects repeatedly to a server that challenges every SYN
//! (backlog 0); the handshake latency is recorded per connection and
//! reduced to a CDF per difficulty setting.
//!
//! **Scale note.** The paper's Fig. 6 latencies (2 µs at `m = 4`, ~286 µs
//! at `m = 16`) imply a hashing rate around 10^8 H/s — kernel-space
//! crypto — which is inconsistent with the same paper's Fig. 3a userspace
//! profile (~3.5·10^5 H/s). We default to the kernel-scale rate so the
//! microsecond magnitudes are comparable, and note that our simulated LAN
//! adds a fixed ~1.3 ms RTT floor the paper's DETER LAN largely avoided.
//! The *shape* — ×2^Δm growth in `m`, additive growth in `k` — is the
//! reproduction target.

use std::fmt;

use hostsim::{ClientParams, SolveBehavior};
use netsim::SimDuration;
use simmetrics::{Cdf, Table};

use crate::scenario::{oracle_strategy, DefenseSpec, Scenario, Timeline, SERVER_IP};

/// The kernel-crypto hash rate implied by the paper's Fig. 6 latencies.
pub const KERNEL_HASH_RATE: f64 = 1.15e8;

/// Result for one difficulty setting.
#[derive(Clone, Debug)]
pub struct CdfRow {
    /// Sub-solutions per challenge.
    pub k: u8,
    /// Difficulty bits.
    pub m: u8,
    /// Empirical CDF of connection times (seconds).
    pub cdf: Cdf,
}

impl CdfRow {
    /// Mean connection time in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.cdf.mean() * 1e6
    }

    /// Median connection time in microseconds.
    pub fn median_us(&self) -> f64 {
        self.cdf.quantile(0.5) * 1e6
    }
}

/// The full Figure 6 result.
#[derive(Clone, Debug)]
pub struct Fig06Result {
    /// One row per `(k, m)` pair, in sweep order.
    pub rows: Vec<CdfRow>,
    /// Hash rate the client solved at.
    pub hash_rate: f64,
}

/// Measures one difficulty setting; returns the connection-time CDF.
pub fn measure(seed: u64, k: u8, m: u8, hash_rate: f64, duration: f64, rate: f64) -> CdfRow {
    let timeline = Timeline {
        total: duration,
        attack_start: duration,
        attack_stop: duration,
    };
    let mut scenario = Scenario::standard(seed, DefenseSpec::puzzles(k, m), &timeline);
    scenario.server.backlog = 0; // challenge every SYN
    let mut client = ClientParams::new(
        crate::scenario::client_addr(0),
        SERVER_IP,
        SolveBehavior::Solve(oracle_strategy()),
        hash_rate,
    );
    client.request_rate = rate;
    client.request_size = 1_000;
    client.request_timeout = SimDuration::from_secs(60);
    scenario.clients = vec![client];

    let mut tb = scenario.build();
    tb.run_until_secs(duration);
    let times = tb
        .clients()
        .next()
        .expect("one client")
        .metrics()
        .connection_times();
    CdfRow {
        k,
        m,
        cdf: Cdf::from_values(times),
    }
}

/// Runs the full sweep: `k ∈ {1..4} × m ∈ {4, 10, 16, 20}` (paper's grid).
pub fn run(seed: u64, full: bool) -> Fig06Result {
    let (duration, rate) = if full { (300.0, 4.0) } else { (90.0, 4.0) };
    let hash_rate = KERNEL_HASH_RATE;
    let mut rows = Vec::new();
    for k in [1u8, 2, 3, 4] {
        for m in [4u8, 10, 16, 20] {
            rows.push(measure(
                seed ^ ((k as u64) << 8 | m as u64),
                k,
                m,
                hash_rate,
                duration,
                rate,
            ));
        }
    }
    Fig06Result { rows, hash_rate }
}

impl fmt::Display for Fig06Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — connection time CDFs (client hash rate {:.2e} H/s)",
            self.hash_rate
        )?;
        let mut t = Table::new(vec![
            "k",
            "m",
            "n",
            "mean (us)",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.k.to_string(),
                r.m.to_string(),
                r.cdf.len().to_string(),
                format!("{:.0}", r.mean_us()),
                format!("{:.0}", r.median_us()),
                format!("{:.0}", r.cdf.quantile(0.9) * 1e6),
                format!("{:.0}", r.cdf.quantile(0.99) * 1e6),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: mean 2.0 us (k=1,m=4), 286 us (k=1,m=16), 558 us (k=4,m=16);\n\
             shape targets: x2 per +1 bit of m beyond the RTT floor, ~linear in k"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_time_grows_exponentially_in_m_and_linearly_in_k() {
        // Use the userspace rate so solve time dominates the RTT floor.
        let rate = 350_000.0;
        let m12 = measure(5, 1, 12, rate, 40.0, 4.0);
        let m15 = measure(5, 1, 15, rate, 40.0, 4.0);
        assert!(m12.cdf.len() > 30, "samples {}", m12.cdf.len());
        // 2^3 = 8x expected growth; allow a broad band (RTT floor + noise).
        let ratio = m15.mean_us() / m12.mean_us();
        assert!(
            (3.0..20.0).contains(&ratio),
            "m growth ratio {ratio} (m12 {:.0}us, m15 {:.0}us)",
            m12.mean_us(),
            m15.mean_us()
        );

        let k1 = measure(6, 1, 14, rate, 40.0, 4.0);
        let k3 = measure(6, 3, 14, rate, 40.0, 4.0);
        let kratio = k3.mean_us() / k1.mean_us();
        assert!((1.8..5.0).contains(&kratio), "k growth ratio {kratio}");
    }

    #[test]
    fn easy_puzzles_sit_at_rtt_floor() {
        let row = measure(7, 1, 4, KERNEL_HASH_RATE, 30.0, 4.0);
        // Solve cost (~16 hashes at 115 MH/s) is negligible: the
        // connection time is the topology's RTT (~1.3 ms) within noise.
        let mean = row.cdf.mean();
        assert!(
            (0.0005..0.01).contains(&mean),
            "mean {mean}s should be near the RTT floor"
        );
    }
}
