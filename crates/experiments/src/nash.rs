//! §4.4 worked example: from measured parameters to the Nash difficulty.
//!
//! Chains the whole §4.3 procedure: `w_av` from the client profiles,
//! `(µ, α)` from the stress test, `ℓ* = w_av/(α+1)` from Theorem 1, and
//! `(k*, m*)` from the selection rule — reproducing the paper's `(2, 17)`.

use std::fmt;

use puzzle_core::Difficulty;
use puzzle_game::{
    asymptotic_difficulty, max_feasible_difficulty, optimal_difficulty, select_parameters,
    GameConfig, SelectionPolicy,
};
use simmetrics::Table;

/// The derived equilibrium and its inputs.
#[derive(Clone, Debug)]
pub struct NashResult {
    /// Average client valuation (hashes per request).
    pub wav: f64,
    /// Plateau service rate µ.
    pub mu: f64,
    /// Asymptotic per-user capacity α.
    pub alpha: f64,
    /// Theorem 1's asymptotic difficulty ℓ*.
    pub ell_star: f64,
    /// Selected wire parameters.
    pub difficulty: Difficulty,
    /// Finite-N cross-check: the exact optimum for N users.
    pub finite_n_ell: f64,
    /// N used for the cross-check.
    pub n: usize,
    /// Existence bound r̂ for that finite game.
    pub r_hat: f64,
}

/// Derives the Nash difficulty from measured parameters.
///
/// # Panics
///
/// Panics if the parameters are degenerate (non-positive µ or `w_av`).
pub fn derive(wav: f64, mu: f64, alpha: f64, n: usize) -> NashResult {
    let ell_star = asymptotic_difficulty(wav, alpha);
    let difficulty = select_parameters(ell_star, SelectionPolicy::FixedK(2)).expect("valid target");
    let cfg = GameConfig::homogeneous(n, wav, alpha * n as f64).expect("valid game");
    let finite_n_ell = optimal_difficulty(&cfg).expect("feasible game");
    let r_hat = max_feasible_difficulty(&cfg);
    NashResult {
        wav,
        mu,
        alpha,
        ell_star,
        difficulty,
        finite_n_ell,
        n,
        r_hat,
    }
}

/// Runs the example with the paper's measured values.
pub fn run(_seed: u64, full: bool) -> NashResult {
    let n = if full { 100_000 } else { 10_000 };
    derive(140_630.0, 1100.0, 1.1, n)
}

impl fmt::Display for NashResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Nash equilibrium difficulty (paper §4.4)")?;
        let mut t = Table::new(vec!["quantity", "value", "paper"]);
        t.row(vec![
            "w_av (hashes)".into(),
            format!("{:.0}", self.wav),
            "140630".into(),
        ]);
        t.row(vec![
            "mu (req/s)".into(),
            format!("{:.0}", self.mu),
            "~1100".into(),
        ]);
        t.row(vec![
            "alpha".into(),
            format!("{:.2}", self.alpha),
            "1.1".into(),
        ]);
        t.row(vec![
            "ell* = w_av/(alpha+1)".into(),
            format!("{:.0}", self.ell_star),
            "66967".into(),
        ]);
        t.row(vec![
            "(k*, m*)".into(),
            format!("({}, {})", self.difficulty.k(), self.difficulty.m()),
            "(2, 17)".into(),
        ]);
        t.row(vec![
            format!("finite-N ell* (N = {})", self.n),
            format!("{:.0}", self.finite_n_ell),
            "-> ell* as N grows".into(),
        ]);
        t.row(vec![
            "r-hat (existence bound)".into(),
            format!("{:.0}", self.r_hat),
            "-".into(),
        ]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_example() {
        let r = run(0, false);
        assert!((r.ell_star - 66_966.7).abs() < 1.0);
        assert_eq!((r.difficulty.k(), r.difficulty.m()), (2, 17));
        // Finite-N optimum approaches the asymptotic value.
        let rel = (r.finite_n_ell - r.ell_star).abs() / r.ell_star;
        assert!(rel < 0.05, "finite-N deviation {rel}");
        // The selected difficulty is feasible.
        assert!(r.ell_star < r.r_hat);
    }
}
