//! Figure 15: partial adoption — what happens to clients that do or do
//! not solve puzzles, against attackers that do or do not solve.
//!
//! Scenarios (paper §6.5): `(NA, NC)` neither solves; `(SA, NC)` solving
//! attacker vs non-solving client; `(*A, SC)` solving client vs either
//! attacker. Shape targets: solving clients are almost always served;
//! non-solving clients see erratic service against a solving attacker and
//! almost none against a non-solving flood.

use std::fmt;

use simmetrics::Table;

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// One adoption scenario's outcome.
#[derive(Clone, Debug)]
pub struct AdoptionRow {
    /// Scenario label, e.g. `(SA, NC)`.
    pub label: String,
    /// Percentage of client requests completed per 10 s window during the
    /// attack.
    pub window_pcts: Vec<f64>,
    /// Mean completion percentage during the attack.
    pub mean_pct: f64,
    /// Minimum 10 s window percentage during the attack.
    pub min_pct: f64,
}

/// The full Figure 15 result.
#[derive(Clone, Debug)]
pub struct Fig15Result {
    /// One row per scenario.
    pub rows: Vec<AdoptionRow>,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Measures one adoption scenario.
pub fn measure(
    seed: u64,
    attacker_solves: bool,
    client_solves: bool,
    timeline: &Timeline,
    bots: usize,
    rate: f64,
) -> AdoptionRow {
    let label = format!(
        "({}, {})",
        if attacker_solves { "SA" } else { "NA" },
        if client_solves { "SC" } else { "NC" }
    );
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), timeline);
    scenario.clients = Scenario::paper_clients(15, client_solves);
    // Kernel-speed hashing for the clients: Fig. 15 reports completion
    // percentages near 100% for solving clients at 20 req/s, which is
    // only consistent with the paper's kernel-crypto solve latencies
    // (see the Fig. 6 scale note and EXPERIMENTS.md).
    for c in &mut scenario.clients {
        c.hash_rate = crate::fig06::KERNEL_HASH_RATE;
    }
    scenario.attackers = Scenario::conn_flood_bots(bots, rate, attacker_solves, timeline);
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);

    // Completion percentage per 10 s window across all clients.
    let (mut attempts, mut completions) = (Vec::new(), Vec::new());
    for c in tb.clients() {
        attempts.push(c.metrics().attempts.clone());
        completions.push(c.metrics().completions.clone());
    }
    let (a0, a1) = timeline.attack_window();
    let mut window_pcts = Vec::new();
    let mut t = a0;
    while t + 10.0 <= a1 {
        let att: f64 = attempts.iter().map(|s| s.sum_between(t, t + 10.0)).sum();
        let done: f64 = completions.iter().map(|s| s.sum_between(t, t + 10.0)).sum();
        if att > 0.0 {
            window_pcts.push(done / att * 100.0);
        }
        t += 10.0;
    }
    let mean = window_pcts.iter().sum::<f64>() / window_pcts.len().max(1) as f64;
    let min = window_pcts.iter().copied().fold(f64::INFINITY, f64::min);
    AdoptionRow {
        label,
        mean_pct: mean,
        min_pct: if min.is_finite() { min } else { 0.0 },
        window_pcts,
    }
}

/// Runs all four adoption scenarios (the paper groups the two `SC` cases).
pub fn run(seed: u64, full: bool) -> Fig15Result {
    let timeline = Timeline::from_full_flag(full);
    run_with(seed, &timeline, 10, 500.0)
}

/// Parameterized variant.
pub fn run_with(seed: u64, timeline: &Timeline, bots: usize, rate: f64) -> Fig15Result {
    let cases = [(false, false), (true, false), (true, true), (false, true)];
    let rows = std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|&(sa, sc)| {
                let timeline = *timeline;
                scope.spawn(move || {
                    measure(
                        seed ^ ((sa as u64) << 1 | sc as u64),
                        sa,
                        sc,
                        &timeline,
                        bots,
                        rate,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread"))
            .collect::<Vec<_>>()
    });
    Fig15Result {
        rows,
        timeline: *timeline,
    }
}

impl fmt::Display for Fig15Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 15 — % of client connections established under partial adoption"
        )?;
        let mut t = Table::new(vec!["scenario", "mean %", "min % (10 s windows)"]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.0}", r.mean_pct),
                format!("{:.0}", r.min_pct),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: (NA,NC) ~0%; (SA,NC) highly variable (drops to 0 at times);\n\
             (*A,SC) ~100% — solving clients are almost always served"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solving_clients_served_non_solving_starved() {
        let t = Timeline::smoke();
        let r = run_with(101, &t, 10, 500.0);
        let find = |label: &str| r.rows.iter().find(|row| row.label == label).expect("row");
        let na_nc = find("(NA, NC)");
        let sa_sc = find("(SA, SC)");
        let na_sc = find("(NA, SC)");

        // Solving clients nearly always get through, either attacker kind.
        assert!(sa_sc.mean_pct > 60.0, "(SA,SC) {:.0}%", sa_sc.mean_pct);
        assert!(na_sc.mean_pct > 60.0, "(NA,SC) {:.0}%", na_sc.mean_pct);
        // Non-solving clients against a non-solving flood: starved.
        assert!(
            na_nc.mean_pct < sa_sc.mean_pct / 2.0,
            "(NA,NC) {:.0}% vs (SA,SC) {:.0}%",
            na_nc.mean_pct,
            sa_sc.mean_pct
        );
    }
}
