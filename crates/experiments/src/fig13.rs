//! Figure 13: the effect of raising the per-bot flood rate (5 bots,
//! 100–1000 pps each) under Nash puzzles.
//!
//! Shape targets (paper): the measured (on-wire) attack rate grows
//! sub-linearly with the configured rate and plateaus (the tool's socket
//! window caps it), while the completion rate stays *flat* — the solving
//! bots are CPU-bound, so sending more SYNs buys nothing.

use std::fmt;

use simmetrics::Table;

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatePoint {
    /// Configured per-bot rate (pps).
    pub per_bot_rate: f64,
    /// Measured aggregate attack rate on the wire (pps).
    pub measured_pps: f64,
    /// Aggregate completion rate at the server (cps).
    pub completed_cps: f64,
}

/// The full Figure 13 result.
#[derive(Clone, Debug)]
pub struct Fig13Result {
    /// Sweep points in rate order.
    pub points: Vec<RatePoint>,
    /// Number of bots.
    pub bots: usize,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Measures one sweep point.
pub fn measure(seed: u64, bots: usize, rate: f64, timeline: &Timeline) -> RatePoint {
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), timeline);
    scenario.attackers = Scenario::conn_flood_bots(bots, rate, true, timeline);
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);
    let (a0, a1) = timeline.attack_window();
    RatePoint {
        per_bot_rate: rate,
        measured_pps: tb.attacker_packet_rate().mean_rate_between(a0, a1),
        completed_cps: tb
            .server_metrics()
            .established_rate_for(tb.attacker_addrs(), 1.0)
            .mean_rate_between(a0, a1),
    }
}

/// Runs the full sweep (paper: 5 bots, rates 100..=1000 step 100; quick
/// mode thins the grid).
pub fn run(seed: u64, full: bool) -> Fig13Result {
    let timeline = Timeline::from_full_flag(full);
    let rates: Vec<f64> = if full {
        (1..=10).map(|i| i as f64 * 100.0).collect()
    } else {
        vec![100.0, 300.0, 500.0, 700.0, 1000.0]
    };
    run_sweep(seed, 5, &rates, &timeline)
}

/// Parameterized sweep, parallelized across threads.
pub fn run_sweep(seed: u64, bots: usize, rates: &[f64], timeline: &Timeline) -> Fig13Result {
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = rates
            .iter()
            .map(|&rate| {
                let timeline = *timeline;
                scope.spawn(move || measure(seed ^ rate as u64, bots, rate, &timeline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect::<Vec<_>>()
    });
    Fig13Result {
        points,
        bots,
        timeline: *timeline,
    }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13 — per-bot rate sweep ({} solving bots, Nash puzzles)",
            self.bots
        )?;
        let mut t = Table::new(vec![
            "rate/bot (pps)",
            "measured attack rate (pps)",
            "completions (cps)",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.0}", p.per_bot_rate),
                format!("{:.0}", p.measured_pps),
                format!("{:.1}", p.completed_cps),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: measured rate grows to ~1200 pps; completions flat at ~11 cps"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_flat_while_rate_grows() {
        let t = Timeline::smoke();
        let r = run_sweep(81, 3, &[100.0, 800.0], &t);
        let lo = &r.points[0];
        let hi = &r.points[1];
        // Measured rate grows with the configured rate...
        assert!(
            hi.measured_pps > 1.5 * lo.measured_pps,
            "measured {:.0} vs {:.0}",
            hi.measured_pps,
            lo.measured_pps
        );
        // ...but completions stay CPU-bound (within a factor ~2.5 band,
        // far below the 8x rate increase).
        assert!(
            hi.completed_cps < lo.completed_cps.max(0.5) * 2.5,
            "completions {:.1} vs {:.1}",
            hi.completed_cps,
            lo.completed_cps
        );
    }
}
