//! Figure 14: the effect of growing the botnet at a fixed aggregate
//! target rate (5000 pps split across 2–14 bots) under Nash puzzles.
//!
//! Shape targets (paper): the measured rate climbs with the bot count
//! (each bot contributes its socket-window ceiling) and the completion
//! rate grows *linearly in the number of bots* but stays roughly two
//! orders of magnitude below the measured packet rate — the attacker must
//! buy machines, not bandwidth (the paper extrapolates ~500 bots for
//! 5000 cps).

use std::fmt;

use simmetrics::Table;

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizePoint {
    /// Number of bots.
    pub bots: usize,
    /// Measured aggregate attack rate (pps).
    pub measured_pps: f64,
    /// Aggregate completion rate (cps).
    pub completed_cps: f64,
}

/// The full Figure 14 result.
#[derive(Clone, Debug)]
pub struct Fig14Result {
    /// Sweep points in bot-count order.
    pub points: Vec<SizePoint>,
    /// Aggregate target rate (pps).
    pub total_rate: f64,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Measures one sweep point.
pub fn measure(seed: u64, bots: usize, total_rate: f64, timeline: &Timeline) -> SizePoint {
    let per_bot = total_rate / bots as f64;
    let mut scenario = Scenario::standard(seed, DefenseSpec::nash(), timeline);
    scenario.attackers = Scenario::conn_flood_bots(bots, per_bot, true, timeline);
    let mut tb = scenario.build();
    tb.run_until_secs(timeline.total);
    let (a0, a1) = timeline.attack_window();
    SizePoint {
        bots,
        measured_pps: tb.attacker_packet_rate().mean_rate_between(a0, a1),
        completed_cps: tb
            .server_metrics()
            .established_rate_for(tb.attacker_addrs(), 1.0)
            .mean_rate_between(a0, a1),
    }
}

/// Runs the full sweep (paper: 2–14 bots at 5000 pps aggregate).
pub fn run(seed: u64, full: bool) -> Fig14Result {
    let timeline = Timeline::from_full_flag(full);
    let sizes: Vec<usize> = if full {
        (1..=7).map(|i| i * 2).collect()
    } else {
        vec![2, 6, 10, 14]
    };
    run_sweep(seed, &sizes, 5000.0, &timeline)
}

/// Parameterized sweep, parallelized across threads.
pub fn run_sweep(seed: u64, sizes: &[usize], total_rate: f64, timeline: &Timeline) -> Fig14Result {
    let points = std::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&bots| {
                let timeline = *timeline;
                scope.spawn(move || measure(seed ^ bots as u64, bots, total_rate, &timeline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect::<Vec<_>>()
    });
    Fig14Result {
        points,
        total_rate,
        timeline: *timeline,
    }
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14 — botnet size sweep (aggregate target {} pps, Nash puzzles)",
            self.total_rate
        )?;
        let mut t = Table::new(vec![
            "bots",
            "measured attack rate (pps)",
            "completions (cps)",
            "cps per bot",
        ]);
        for p in &self.points {
            t.row(vec![
                p.bots.to_string(),
                format!("{:.0}", p.measured_pps),
                format!("{:.1}", p.completed_cps),
                format!("{:.2}", p.completed_cps / p.bots as f64),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "paper reference: measured rate peaks ~2250 pps at 14 bots; completions grow\n\
             linearly to ~25 cps — about 1/100 of the measured rate; ~500 bots would be\n\
             needed for 5000 cps"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_scale_with_bots_not_rate() {
        let t = Timeline::smoke();
        let r = run_sweep(91, &[2, 8], 3000.0, &t);
        let small = &r.points[0];
        let big = &r.points[1];
        // Per-bot completion rate is roughly constant (CPU-bound)...
        let per_small = small.completed_cps / small.bots as f64;
        let per_big = big.completed_cps / big.bots as f64;
        assert!(
            per_big < per_small * 2.5 + 0.5 && per_big > per_small / 2.5 - 0.5,
            "per-bot {per_small:.2} vs {per_big:.2}"
        );
        // ...so total completions grow with the botnet size.
        assert!(
            big.completed_cps > small.completed_cps,
            "total {:.1} vs {:.1}",
            big.completed_cps,
            small.completed_cps
        );
        // And completions stay well below the measured packet rate.
        assert!(big.completed_cps < big.measured_pps / 10.0);
    }
}
