//! Figure 11: the attackers' effective (established-connection) rate
//! during a connection flood — cookies vs challenges.
//!
//! Shape target (paper): cookies leave the attackers' establishment rate
//! essentially unthrottled (~225 cps average in their deployment) while
//! Nash challenges crush it by more than an order of magnitude (~4 cps,
//! "a reduction by a factor of 37").

use std::fmt;

use simmetrics::{IntervalSeries, Table};

use crate::scenario::{DefenseSpec, Scenario, Timeline};

/// Per-defence attacker establishment measurements.
#[derive(Clone, Debug)]
pub struct AttackRateRow {
    /// Defence label.
    pub label: String,
    /// Attackers' established connections per second (1 s bins).
    pub series: IntervalSeries,
    /// Mean established rate during the attack (cps).
    pub mean_cps: f64,
    /// Peak 1 s established rate during the attack (cps).
    pub peak_cps: f64,
}

/// The full Figure 11 result.
#[derive(Clone, Debug)]
pub struct Fig11Result {
    /// Cookies first, then challenges.
    pub rows: Vec<AttackRateRow>,
    /// cookies-to-challenges mean ratio.
    pub reduction_factor: f64,
    /// The timeline used.
    pub timeline: Timeline,
}

/// Runs the Figure 11 measurement.
pub fn run(seed: u64, full: bool) -> Fig11Result {
    run_with(seed, Timeline::from_full_flag(full), 10, 500.0)
}

/// Parameterized variant.
pub fn run_with(seed: u64, timeline: Timeline, bots: usize, rate: f64) -> Fig11Result {
    let (a0, a1) = timeline.attack_window();
    let mut rows = Vec::new();
    for defense in [DefenseSpec::cookies(), DefenseSpec::nash()] {
        let label = defense.label();
        let mut scenario = Scenario::standard(seed, defense, &timeline);
        scenario.attackers = Scenario::conn_flood_bots(bots, rate, false, &timeline);
        let mut tb = scenario.build();
        tb.run_until_secs(timeline.total);
        let series = tb
            .server_metrics()
            .established_rate_for(tb.attacker_addrs(), 1.0);
        let mean = series.mean_rate_between(a0, a1);
        let peak = series
            .rates()
            .iter()
            .filter(|(t, _)| *t >= a0 && *t < a1)
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        rows.push(AttackRateRow {
            label,
            series,
            mean_cps: mean,
            peak_cps: peak,
        });
    }
    let reduction = if rows[1].mean_cps > 0.0 {
        rows[0].mean_cps / rows[1].mean_cps
    } else {
        f64::INFINITY
    };
    Fig11Result {
        rows,
        reduction_factor: reduction,
        timeline,
    }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11 — attackers' established-connection rate")?;
        let mut t = Table::new(vec!["defense", "mean (cps)", "peak (cps)"]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.1}", r.mean_cps),
                format!("{:.1}", r.peak_cps),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "reduction factor (cookies / challenges): {:.0}x   (paper: ~37x, 225 -> 4 cps)",
            self.reduction_factor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenges_crush_attacker_establishment_rate() {
        let r = run_with(61, Timeline::smoke(), 10, 500.0);
        let cookies = &r.rows[0];
        let nash = &r.rows[1];
        assert!(cookies.mean_cps > 8.0, "cookies {:.1}", cookies.mean_cps);
        assert!(
            nash.mean_cps < cookies.mean_cps / 4.0,
            "nash {:.1} vs cookies {:.1}",
            nash.mean_cps,
            cookies.mean_cps
        );
        assert!(r.reduction_factor > 4.0, "factor {:.1}", r.reduction_factor);
    }
}
